package policy

// frd.go implements FRD, a forward reuse-distance regressor policy in the
// shape of Li & Gu, "Learning Forward Reuse Distance" (TPDS 2020): instead of
// classifying PCs as cache-friendly or cache-averse (Hawkeye, Glider), FRD
// regresses the *forward reuse distance* of each access — how many LLC
// accesses from now the line will be referenced again — and evicts the line
// with the furthest predicted reuse, bypassing the incoming line when it is
// itself predicted furthest (the Belady-MIN decision rule applied to
// predicted, rather than oracle, distances).
//
// The regressor is an online integer perceptron over per-PC reuse-distance
// history features: the last frdHistLen observed reuse-distance buckets of
// the PC index small weight tables, and the prediction is the PC's last
// observed bucket plus the summed table weights (a learned correction on a
// persistence baseline). Training data comes from a sampled-set trainer fed
// by *observed* reuse distances: every set keeps a bounded window of
// (block → feature snapshot) records, and when a block is re-accessed the
// elapsed distance trains the snapshot that predicted it; records that fall
// out of the window un-reused train toward "beyond window".
//
// All state is integer, all iteration over maps happens in sorted order, and
// the trainer runs identically for any worker count, so FRD joins the
// byte-identity differential suites unchanged.
//
// The model is a seam: NewFRDWithPredictor injects any ReusePredictor, and
// the oracle property tests inject a perfect predictor to prove the eviction
// machinery reproduces Belady MIN access-for-access.

import (
	"math/bits"
	"sort"

	"glider/internal/cache"
	"glider/internal/obs"
	"glider/internal/trace"
)

// ReuseNever is the predicted forward reuse distance of a line that is not
// expected to be referenced again within any horizon.
const ReuseNever = uint64(1) << 62

// ReusePredictor is the model seam of the reuse-distance policy family (FRD,
// MSA). PredictReuse fills dst with the predicted forward distances — in
// demand LLC accesses from now — of the block's next len(dst) uses, soonest
// first and nondecreasing; ReuseNever marks "no further use expected".
// Implementations must not mutate their own observable state in PredictReuse
// (policies call it from both Victim and Update for the same access).
type ReusePredictor interface {
	PredictReuse(pc, block uint64, dst []uint64)
}

// ModelRow is one per-PC introspection row of a learned reuse-distance model
// — the reuse-distance family's analog of Glider's ISVM rows, served by
// gliderd's /v1/predict.
type ModelRow struct {
	PC      uint64 `json:"pc"`
	Samples uint64 `json:"samples"`
	// MeanAbsErr is the mean absolute training error in log2 distance
	// buckets over this PC's observed reuses.
	MeanAbsErr float64 `json:"mean_abs_err"`
	// ErrHist counts training errors clamped to [-4, +4] buckets
	// (ErrHist[4] is exact predictions).
	ErrHist []uint64 `json:"err_hist"`
	// Predicted is the model's current forward-reuse prediction for the PC
	// in log2 distance buckets: one entry for FRD, k entries for MSA.
	Predicted []int `json:"predicted_buckets"`
}

// ModelIntrospector is implemented by policies whose learned model can
// report per-PC rows (FRD, MSA); experiments.RunPredictCell probes for it.
type ModelIntrospector interface {
	TopModelRows(n int) []ModelRow
}

// reuseBucket maps a forward reuse distance to its log2 bucket. Bucket b
// covers distances in (2^(b-1), 2^b]; distance 1 is bucket 1, distance 0
// (never valid) bucket 0.
func reuseBucket(d uint64) int {
	if d >= ReuseNever {
		return reuseMaxBucket
	}
	b := bits.Len64(d)
	if b > reuseMaxBucket {
		return reuseMaxBucket
	}
	return b
}

// bucketDist returns the representative (upper-bound) distance of a bucket.
func bucketDist(b int) uint64 {
	if b < 0 {
		b = 0
	}
	if b >= reuseMaxBucket {
		return ReuseNever
	}
	return uint64(1) << uint(b)
}

// reuseMaxBucket saturates bucket arithmetic; 2^40 accesses is beyond any
// simulated trace.
const reuseMaxBucket = 40

// satAdd is uint64 addition saturating below the expiry sentinel range.
func satAdd(a, b uint64) uint64 {
	s := a + b
	if s < a || s > (^uint64(0))>>1 {
		return (^uint64(0)) >> 1
	}
	return s
}

// clampInt bounds v to [lo, hi].
func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// --- FRD regressor ----------------------------------------------------------

const (
	// frdTableBits sizes each feature weight table.
	frdTableBits = 12
	frdTableSize = 1 << frdTableBits
	// frdHistLen is the per-PC reuse-distance history depth.
	frdHistLen = 3
	// frdNumTables is bias + one cross table per history slot.
	frdNumTables = 1 + frdHistLen
	// frdShift scales the summed weights into bucket units (each unit of
	// summed weight is 1/4 bucket).
	frdShift = 2
	// frdStepMax caps one training update per table.
	frdStepMax = 4
	// frdWeightMax saturates the int16 weights well inside their range.
	frdWeightMax = 512
	// frdInitBucket seeds unseen per-PC histories with a mid-range reuse
	// distance (2^8 accesses) so cold predictions are neither "immediate"
	// nor "never".
	frdInitBucket = 8
	// frdWindowFactor sizes the sampler window (× sets × ways, in global
	// demand accesses): reuses up to 4× cache capacity are observable,
	// anything longer trains as beyond-window.
	frdWindowFactor = 4
	// frdSweepPeriod is the global cadence (demand accesses) of the
	// beyond-window detraining sweep.
	frdSweepPeriod = 4096
	// frdMaxTrackedPCs bounds the per-PC error table.
	frdMaxTrackedPCs = 4096
)

// frdFeatures is the regressor's view of one access: the weight-table
// indices it read and the prediction it made, kept so a later observed
// reuse distance can train exactly this snapshot.
type frdFeatures struct {
	idx  [frdNumTables]int32
	pred int16
}

// frdRegressor is the online forward-reuse-distance model: frdNumTables
// integer weight tables plus a per-PC-slot history of observed buckets.
type frdRegressor struct {
	w    [frdNumTables][]int16
	hist []uint8 // frdTableSize × frdHistLen, newest first
}

func newFRDRegressor() *frdRegressor {
	r := &frdRegressor{hist: make([]uint8, frdTableSize*frdHistLen)}
	for i := range r.hist {
		r.hist[i] = frdInitBucket
	}
	for t := range r.w {
		r.w[t] = make([]int16, frdTableSize)
	}
	return r
}

// features computes the table indices and prediction for an access by pc.
// Read-only: safe to call from Victim and PredictFriendly.
func (r *frdRegressor) features(pc uint64) frdFeatures {
	var f frdFeatures
	slot := hashPC(pc, frdTableSize)
	h := r.hist[slot*frdHistLen : slot*frdHistLen+frdHistLen]
	f.idx[0] = int32(slot)
	sum := int(r.w[0][slot])
	for j := 0; j < frdHistLen; j++ {
		i := int32(hashPC(pc^(uint64(h[j])+3)<<uint(32+8*j), frdTableSize))
		f.idx[j+1] = i
		sum += int(r.w[j+1][i])
	}
	// Persistence baseline (last observed bucket) plus learned correction.
	f.pred = int16(clampInt(int(h[0])+(sum>>frdShift), 0, reuseMaxBucket))
	return f
}

// train applies one regression step toward target on the snapshot f.
func (r *frdRegressor) train(f frdFeatures, target int) {
	step := clampInt(target-int(f.pred), -frdStepMax, frdStepMax)
	if step == 0 {
		return
	}
	for t := 0; t < frdNumTables; t++ {
		w := int(r.w[t][f.idx[t]]) + step
		r.w[t][f.idx[t]] = int16(clampInt(w, -frdWeightMax, frdWeightMax))
	}
}

// observe pushes an observed reuse-distance bucket into pc's history.
func (r *frdRegressor) observe(pc uint64, b uint8) {
	slot := hashPC(pc, frdTableSize)
	h := r.hist[slot*frdHistLen : slot*frdHistLen+frdHistLen]
	copy(h[1:], h[:frdHistLen-1])
	h[0] = b
}

// PredictReuse implements ReusePredictor (read-only).
func (r *frdRegressor) PredictReuse(pc, block uint64, dst []uint64) {
	d := bucketDist(int(r.features(pc).pred))
	for j := range dst {
		dst[j] = d
	}
}

// --- FRD policy -------------------------------------------------------------

// frdSample is one sampler record: which PC touched a block in a sampled
// set, when, and what the model predicted at that moment. Training recomputes
// features at observation time — stepping weights against a stale snapshot
// overcorrects badly when many same-context samples resolve back-to-back —
// but the snapshot prediction is kept to score the quality metrics against
// what the eviction logic actually used.
type frdSample struct {
	pred int16
	pc   uint64
	time uint64
}

type frdSampler struct {
	last map[uint64]frdSample
}

// pcErrStat aggregates one PC's prediction errors (in buckets).
type pcErrStat struct {
	n      uint64
	sumAbs uint64
	hist   [9]uint64 // err clamped to [-4, +4]
}

// FRDDebug exposes training and decision counters for tests and reports.
type FRDDebug struct {
	// TrainEvents counts observed-reuse training updates; SumAbsErr and
	// SumErr accumulate their errors in buckets.
	TrainEvents uint64
	SumAbsErr   uint64
	SumErr      int64
	// Expiries counts sampler records trained as beyond-window.
	Expiries uint64
	// Bypasses counts incoming lines the policy declined to cache.
	Bypasses uint64
}

// MeanAbsErr returns the mean absolute prediction error in buckets.
func (d FRDDebug) MeanAbsErr() float64 {
	if d.TrainEvents == 0 {
		return 0
	}
	return float64(d.SumAbsErr) / float64(d.TrainEvents)
}

// FRD is the forward reuse-distance regressor policy.
type FRD struct {
	sets, ways int
	capacity   uint64
	clock      uint64 // demand accesses completed
	window     uint64
	next       []uint64 // predicted absolute next-use time per line
	model      ReusePredictor
	learn      *frdRegressor // nil when an external model is injected
	samplers   map[int]*frdSampler
	pcErr      map[uint64]*pcErrStat
	debug      FRDDebug

	// Observability (nil when disabled; see AttachObs).
	obsPred   *obs.Histogram
	obsErr    *obs.Histogram
	obsTrain  *obs.Counter
	obsExpire *obs.Counter
	obsBypass *obs.Counter
	sink      obs.Sink
}

// NewFRD builds the learned FRD policy for the given geometry.
func NewFRD(sets, ways int) *FRD {
	p := newFRDShell(sets, ways)
	p.learn = newFRDRegressor()
	p.model = p.learn
	return p
}

// NewFRDWithPredictor builds an FRD policy around an injected model — the
// oracle seam used by the Belady-equivalence property tests. The sampled-set
// trainer is disabled; the eviction machinery is byte-identical to NewFRD's.
func NewFRDWithPredictor(sets, ways int, model ReusePredictor) *FRD {
	p := newFRDShell(sets, ways)
	p.model = model
	return p
}

func newFRDShell(sets, ways int) *FRD {
	return &FRD{
		sets:     sets,
		ways:     ways,
		capacity: uint64(sets * ways),
		window:   uint64(frdWindowFactor * sets * ways),
		next:     make([]uint64, sets*ways),
		samplers: make(map[int]*frdSampler),
		pcErr:    make(map[uint64]*pcErrStat),
	}
}

// Name implements cache.Policy.
func (p *FRD) Name() string { return "frd" }

// Debug returns the accumulated counters.
func (p *FRD) Debug() FRDDebug { return p.debug }

// AttachObs implements obs.Attacher: predicted-bucket and training-error
// histograms plus event counters.
func (p *FRD) AttachObs(reg *obs.Registry, sink obs.Sink) {
	if reg == nil && sink == nil {
		return
	}
	p.obsPred = reg.Histogram("frd.predict.bucket", obs.LinearBuckets(0, 4, 11))
	p.obsErr = reg.Histogram("frd.train.err", obs.LinearBuckets(-8, 2, 9))
	p.obsTrain = reg.Counter("frd.train.events")
	p.obsExpire = reg.Counter("frd.train.expiries")
	p.obsBypass = reg.Counter("frd.evict.bypass")
	p.sink = sink
}

// FlushObs implements obs.Flusher: emits the per-PC prediction-error
// histogram rows (hottest PCs first) as end-of-run events.
func (p *FRD) FlushObs() {
	if p.sink == nil {
		return
	}
	p.sink.Emit("frd", "summary", map[string]any{
		"train_events": p.debug.TrainEvents, "expiries": p.debug.Expiries,
		"bypasses": p.debug.Bypasses, "mean_abs_err": p.debug.MeanAbsErr(),
	})
	for _, row := range p.TopModelRows(16) {
		p.sink.Emit("frd", "pc_error", map[string]any{
			"pc": row.PC, "samples": row.Samples, "mean_abs_err": row.MeanAbsErr,
			"err_hist": row.ErrHist, "predicted_buckets": row.Predicted,
		})
	}
}

// recordErr accumulates one training error globally and per PC.
func (p *FRD) recordErr(pc uint64, err int) {
	abs := err
	if abs < 0 {
		abs = -abs
	}
	p.debug.TrainEvents++
	p.debug.SumAbsErr += uint64(abs)
	p.debug.SumErr += int64(err)
	p.obsTrain.Inc()
	p.obsErr.Observe(float64(err))
	s, ok := p.pcErr[pc]
	if !ok {
		if len(p.pcErr) >= frdMaxTrackedPCs {
			return
		}
		s = &pcErrStat{}
		p.pcErr[pc] = s
	}
	s.n++
	s.sumAbs += uint64(abs)
	s.hist[clampInt(err, -4, 4)+4]++
}

// TopModelRows implements ModelIntrospector: the n most-trained PCs'
// error histograms and current predictions, ordered by sample count
// descending (PC ascending on ties).
func (p *FRD) TopModelRows(n int) []ModelRow {
	pcs := make([]uint64, 0, len(p.pcErr))
	for pc := range p.pcErr {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool {
		si, sj := p.pcErr[pcs[i]], p.pcErr[pcs[j]]
		if si.n != sj.n {
			return si.n > sj.n
		}
		return pcs[i] < pcs[j]
	})
	if n >= 0 && len(pcs) > n {
		pcs = pcs[:n]
	}
	rows := make([]ModelRow, 0, len(pcs))
	for _, pc := range pcs {
		s := p.pcErr[pc]
		row := ModelRow{
			PC:         pc,
			Samples:    s.n,
			MeanAbsErr: float64(s.sumAbs) / float64(s.n),
			ErrHist:    append([]uint64(nil), s.hist[:]...),
		}
		if p.learn != nil {
			row.Predicted = []int{int(p.learn.features(pc).pred)}
		}
		rows = append(rows, row)
	}
	return rows
}

// PredictFriendly implements the friendly/averse predictor interface: an
// access is friendly when its predicted forward reuse distance fits inside
// the cache capacity.
func (p *FRD) PredictFriendly(pc uint64, core uint8) bool {
	var d [1]uint64
	p.model.PredictReuse(pc, 0, d[:])
	return d[0] < p.capacity
}

// Victim implements cache.Policy with the MIN decision rule over predicted
// absolute next-use times: evict the line predicted furthest, preferring
// expired lines (predicted reuse time already passed — the prediction was
// wrong and the line is presumed dead); bypass the incoming line when no
// resident is predicted strictly further than it.
func (p *FRD) Victim(set int, pc, block uint64, core uint8, lines []cache.Line) int {
	var d [1]uint64
	p.model.PredictReuse(pc, block, d[:])
	furthest := satAdd(p.clock, d[0])
	victim := cache.Bypass
	base := set * p.ways
	for w := range lines {
		eff := p.next[base+w]
		if eff <= p.clock {
			eff = ^uint64(0) // expired: presumed dead, evict first
		}
		if eff > furthest {
			furthest = eff
			victim = w
		}
	}
	if victim == cache.Bypass {
		p.debug.Bypasses++
		p.obsBypass.Inc()
	}
	return victim
}

// Update implements cache.Policy: train the regressor from observed reuse
// distances on sampled sets, then stamp the touched line with its freshly
// predicted absolute next-use time.
func (p *FRD) Update(set, way int, pc, block uint64, core uint8, hit bool, kind trace.Kind) {
	if kind == trace.Writeback {
		// Writeback fills carry no reuse signal: mark them expired
		// (evict-first) and leave the clock and trainer untouched.
		if way >= 0 && !hit {
			p.next[set*p.ways+way] = p.clock
		}
		return
	}
	var dist uint64
	if p.learn != nil {
		p.trainSampled(set, pc, block)
		f := p.learn.features(pc)
		p.obsPred.Observe(float64(f.pred))
		dist = bucketDist(int(f.pred))
	} else {
		var d [1]uint64
		p.model.PredictReuse(pc, block, d[:])
		dist = d[0]
	}
	if way >= 0 {
		p.next[set*p.ways+way] = satAdd(p.clock, dist)
	}
	p.clock++
	if p.learn != nil && p.clock%frdSweepPeriod == 0 {
		p.sweep()
	}
}

// trainSampled records this access in the set's sampler and, when the block
// was seen before, trains the regressor on the observed reuse distance.
func (p *FRD) trainSampled(set int, pc, block uint64) {
	s, ok := p.samplers[set]
	if !ok {
		s = &frdSampler{last: make(map[uint64]frdSample, frdWindowFactor*p.ways)}
		p.samplers[set] = s
	}
	if prev, ok := s.last[block]; ok {
		target := reuseBucket(p.clock - prev.time)
		p.recordErr(prev.pc, target-int(prev.pred))
		p.learn.train(p.learn.features(prev.pc), target)
		p.learn.observe(prev.pc, uint8(target))
	}
	s.last[block] = frdSample{pred: p.learn.features(pc).pred, pc: pc, time: p.clock}
}

// sweep detrains sampler records whose blocks were never re-accessed within
// the window: their true reuse distance is "beyond window", so they train
// toward one bucket past it. Like Glider's detrain sweep, iteration is
// sorted — regression updates are order-sensitive, and map-range order here
// would make whole simulations nondeterministic.
func (p *FRD) sweep() {
	beyond := reuseBucket(p.window) + 1
	if beyond > reuseMaxBucket {
		beyond = reuseMaxBucket
	}
	sets := make([]int, 0, len(p.samplers))
	for set := range p.samplers {
		sets = append(sets, set)
	}
	sort.Ints(sets)
	var expired []uint64
	for _, set := range sets {
		s := p.samplers[set]
		expired = expired[:0]
		for b, e := range s.last {
			if p.clock-e.time > p.window {
				expired = append(expired, b)
			}
		}
		sort.Slice(expired, func(i, j int) bool { return expired[i] < expired[j] })
		for _, b := range expired {
			e := s.last[b]
			p.learn.train(p.learn.features(e.pc), beyond)
			p.learn.observe(e.pc, uint8(beyond))
			p.debug.Expiries++
			p.obsExpire.Inc()
			delete(s.last, b)
		}
	}
}
