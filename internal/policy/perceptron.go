package policy

import (
	"glider/internal/cache"
	"glider/internal/trace"
)

// Perceptron reuse prediction (Teran, Wang & Jiménez, MICRO 2016). Each
// feature (the current PC and an *ordered* short history of past PCs)
// indexes its own table of small integer weights; the sum of the selected
// weights predicts whether the incoming line will be reused. Lines
// predicted dead insert at distant RRPV. Training is sampler-style: a hit
// trains toward "reused", an eviction without reuse trains toward "dead".
//
// Contrast with Glider (§2.1): the history here is ordered and short
// (3 PCs), so the same control-flow context fragments across many distinct
// feature values — exactly the weakness the paper's unordered PCHR fixes.

// perceptron weight tables.
const (
	percTableSize = 256
	percWeightMax = 31
	percWeightMin = -32
	percTheta     = 3  // training margin
	percTauBypass = 10 // predict dead when sum exceeds this
)

// featureSet computes the per-feature table indices for one access.
type percFeatures [4]uint16

// perceptronCore holds the weight tables shared by Perceptron and MPPPB.
type perceptronCore struct {
	tables [][]int8 // nf × percTableSize
}

func newPerceptronCore(nf int) perceptronCore {
	t := make([][]int8, nf)
	for i := range t {
		t[i] = make([]int8, percTableSize)
	}
	return perceptronCore{tables: t}
}

func (c *perceptronCore) sum(idx []uint16) int {
	s := 0
	for f, i := range idx {
		s += int(c.tables[f][i])
	}
	return s
}

// train moves weights toward dead (+1) or reused (−1) with the perceptron
// threshold rule.
func (c *perceptronCore) train(idx []uint16, dead bool, sum int) {
	y := 1
	if !dead {
		y = -1
	}
	// Update on misprediction or insufficient margin.
	predDead := sum > percTauBypass
	if predDead == dead && abs(sum-percTauBypass) > percTheta {
		return
	}
	for f, i := range idx {
		w := int(c.tables[f][i]) + y
		if w > percWeightMax {
			w = percWeightMax
		}
		if w < percWeightMin {
			w = percWeightMin
		}
		c.tables[f][i] = int8(w)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Perceptron is the online perceptron reuse predictor policy.
type Perceptron struct {
	ways  int
	state rrpvState
	core  perceptronCore
	// Ordered PC history per core.
	hist [8][3]uint64
	// Per-line stored feature indices and reuse bit for training.
	feat   [][][]uint16
	reused [][]bool
}

// NewPerceptron builds the policy.
func NewPerceptron(sets, ways int) *Perceptron {
	p := &Perceptron{
		ways:  ways,
		state: newRRPVState(sets, ways),
		core:  newPerceptronCore(4),
	}
	p.feat = make([][][]uint16, sets)
	p.reused = make([][]bool, sets)
	for s := 0; s < sets; s++ {
		p.feat[s] = make([][]uint16, ways)
		p.reused[s] = make([]bool, ways)
	}
	return p
}

// Name implements cache.Policy.
func (p *Perceptron) Name() string { return "perceptron" }

// features builds the ordered-history feature vector: each history position
// is a separate feature, so ordering is baked into the representation.
func (p *Perceptron) features(pc uint64, core uint8) []uint16 {
	h := &p.hist[core%8]
	return []uint16{
		uint16(hashPC(pc, percTableSize)),
		uint16(hashPC(h[0]*3, percTableSize)),
		uint16(hashPC(h[1]*5, percTableSize)),
		uint16(hashPC(h[2]*7, percTableSize)),
	}
}

func (p *Perceptron) observe(pc uint64, core uint8) {
	h := &p.hist[core%8]
	h[2], h[1], h[0] = h[1], h[0], pc
}

// Victim implements cache.Policy: RRPV victim with dead-on-eviction
// training.
func (p *Perceptron) Victim(set int, pc, block uint64, core uint8, lines []cache.Line) int {
	w := p.state.victim(set)
	if lines[w].Valid && !p.reused[set][w] && p.feat[set][w] != nil {
		p.core.train(p.feat[set][w], true, p.core.sum(p.feat[set][w]))
	}
	return w
}

// Update implements cache.Policy.
func (p *Perceptron) Update(set, way int, pc, block uint64, core uint8, hit bool, kind trace.Kind) {
	if kind == trace.Writeback {
		if way >= 0 && !hit {
			p.state.rrpv[set][way] = maxRRPV
		}
		return
	}
	if way < 0 {
		p.observe(pc, core)
		return
	}
	if hit {
		if !p.reused[set][way] && p.feat[set][way] != nil {
			p.core.train(p.feat[set][way], false, p.core.sum(p.feat[set][way]))
		}
		p.reused[set][way] = true
		p.state.rrpv[set][way] = 0
		p.observe(pc, core)
		return
	}
	// Fill.
	f := p.features(pc, core)
	sum := p.core.sum(f)
	p.feat[set][way] = f
	p.reused[set][way] = false
	if sum > percTauBypass {
		p.state.rrpv[set][way] = maxRRPV
	} else if sum > 0 {
		p.state.rrpv[set][way] = 2
	} else {
		p.state.rrpv[set][way] = 0
	}
	p.observe(pc, core)
}
