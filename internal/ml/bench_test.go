package ml

import (
	"math/rand"
	"testing"
)

// Microbenchmarks for the dense kernels and the LSTM hot path. `make bench`
// runs these (and the offline training benchmarks) and records the results
// in BENCH_train.json.

func benchSeq(vocab, n int) ([]int, []bool) {
	r := rand.New(rand.NewSource(5))
	tokens := make([]int, n)
	labels := make([]bool, n)
	for i := range tokens {
		tokens[i] = r.Intn(vocab)
		labels[i] = r.Intn(2) == 0
	}
	return tokens, labels
}

func BenchmarkMulVec(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	m := randMat(r, 128, 128)
	x, out := NewVec(128), NewVec(128)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVec(x, out)
	}
}

func BenchmarkMatMul(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	a, m, out := randMat(r, 60, 128), randMat(r, 128, 32), NewMat(60, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(a, m, out)
	}
}

func BenchmarkAddOuterBatch(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	xs, ys, m := randMat(r, 60, 128), randMat(r, 60, 32), NewMat(128, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AddOuterBatch(m, xs, ys)
	}
}

// BenchmarkLSTMStep measures one full train step (forward + backward +
// optimizer) of the attention model on a paper-shaped sequence (2N = 60
// tokens, N predictions), for both kernel paths. ns/op here is the unit of
// work the data-parallel trainer distributes.
func BenchmarkLSTMStep(b *testing.B) {
	for mode, kernels := range kernelModes {
		b.Run(mode, func(b *testing.B) {
			cfg := FastConfig(256)
			cfg.Kernels = kernels
			m, err := NewAttentionLSTM(cfg)
			if err != nil {
				b.Fatal(err)
			}
			tokens, labels := benchSeq(cfg.Vocab, 60)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.TrainSequence(tokens, labels, 30)
			}
		})
	}
}
