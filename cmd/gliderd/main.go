// Command gliderd serves the repository's simulation engine over HTTP: a
// batched, backpressured JSON API for simulation cells and prediction
// queries (see internal/server and DESIGN.md §11).
//
// Quickstart:
//
//	gliderd -addr :8080 &
//	curl -s localhost:8080/v1/catalog
//	curl -s -X POST localhost:8080/v1/sim \
//	  -d '{"workload":"omnetpp","policy":"glider","accesses":200000,"seed":42}'
//
// SIGINT/SIGTERM triggers a graceful drain: running simulations finish,
// queued and new requests are rejected with 503, then the listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"glider/internal/ledger"
	"glider/internal/obs"
	"glider/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	queueDepth := flag.Int("queue", 64, "bounded job queue depth (full queue answers 429)")
	workers := flag.Int("workers", 0, "simulation pool workers (0 = one per CPU)")
	batchMax := flag.Int("batch-max", 8, "max jobs dispatched to the pool per batch")
	cacheEntries := flag.Int("cache", 256, "result cache entries")
	defaultTimeout := flag.Duration("timeout", 60*time.Second, "default per-request deadline")
	maxAccesses := flag.Int("max-accesses", 2_000_000, "max accesses one job may request")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight work on shutdown")
	shard := flag.String("shard", "", "shard identity reported in responses and /healthz (for fleet deployments)")
	ledgerPath := flag.String("ledger", "", "append-only experiment ledger file; records every served result and serves /v1/ledger/{root,proof}")
	flushEvery := flag.Duration("ledger-flush", 5*time.Second, "ledger anchoring interval (with -ledger)")
	flag.Parse()

	reg := obs.NewRegistry()
	var led *ledger.Ledger
	if *ledgerPath != "" {
		backend, err := ledger.OpenDisk(*ledgerPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gliderd: opening ledger: %v\n", err)
			os.Exit(1)
		}
		if backend.Torn() {
			log.Printf("gliderd: ledger %s had a torn tail (crash mid-append); truncated to last complete record", *ledgerPath)
		}
		led, err = ledger.New(backend, ledger.Options{FlushEvery: *flushEvery, Obs: reg})
		if err != nil {
			fmt.Fprintf(os.Stderr, "gliderd: ledger failed verification: %v\n", err)
			os.Exit(1)
		}
		log.Printf("gliderd: ledger %s open: %+v", *ledgerPath, led.Root())
	}

	srv := server.New(server.Config{
		QueueDepth:     *queueDepth,
		Workers:        *workers,
		BatchMax:       *batchMax,
		CacheEntries:   *cacheEntries,
		DefaultTimeout: *defaultTimeout,
		Limits:         server.Limits{MaxAccesses: *maxAccesses},
		ShardID:        *shard,
		Obs:            reg,
		Ledger:         led,
	})

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	log.Printf("gliderd: listening on %s (queue=%d workers=%d batch-max=%d)", *addr, *queueDepth, *workers, *batchMax)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("gliderd: %s received, draining (in-flight finishes, queue rejects)", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			log.Printf("gliderd: drain incomplete: %v", err)
		}
		if err := hs.Shutdown(ctx); err != nil {
			log.Printf("gliderd: shutdown: %v", err)
		}
		// Anchor whatever is still pending so the log closes on a batch
		// boundary — a clean restart replays to exactly this head.
		if led != nil {
			if err := led.Close(); err != nil {
				log.Printf("gliderd: closing ledger: %v", err)
			}
		}
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "gliderd: %v\n", err)
			os.Exit(1)
		}
	}
}
