package offline

import (
	"math/rand"
	"sort"

	"glider/internal/ml"
)

// AttentionCDF trains one LSTM per scaling factor and returns, for each
// factor, the pooled attention-weight samples plus the model's accuracy —
// the data behind Figure 4.
type AttentionCDF struct {
	// Scale is the attention scaling factor f.
	Scale float64
	// Weights holds all attention weights observed on the sampled test
	// sequences.
	Weights []float64
	// Accuracy is the model's test accuracy at this scale.
	Accuracy float64
}

// AttentionWeightStudy runs the Figure 4 experiment over the given scales.
func AttentionWeightStudy(d *Dataset, scales []float64, opts LSTMOptions) ([]AttentionCDF, error) {
	out := make([]AttentionCDF, 0, len(scales))
	for _, f := range scales {
		o := opts
		cfg := o.Config
		if cfg.Vocab == 0 {
			cfg = ml.FastConfig(len(d.Vocab))
		}
		cfg.Scale = f
		o.Config = cfg
		m, res, err := TrainLSTM(d, o)
		if err != nil {
			return nil, err
		}
		seqs := d.Sequences(o.HistoryLen, false)
		if len(seqs) > 20 {
			seqs = seqs[:20]
		}
		var ws []float64
		for _, s := range seqs {
			for _, row := range m.AttentionWeights(s.Tokens, s.PredictFrom) {
				ws = append(ws, row...)
			}
		}
		out = append(out, AttentionCDF{Scale: f, Weights: ws, Accuracy: res.FinalAccuracy()})
	}
	return out, nil
}

// Heatmap is an attention-weight matrix for consecutive target accesses:
// rows are targets, columns are source offsets relative to the target
// (Figure 5). Row i, column j holds the weight the (i+1)-th target assigns
// to the source at offset −(cols−j).
type Heatmap struct {
	// Rows[i][j] is the attention weight; rows are normalized per target.
	Rows [][]float64
	// Offsets[j] is the source offset of column j relative to the target.
	Offsets []int
}

// AttentionHeatmap extracts the attention pattern for `targets` consecutive
// predicted accesses, keeping the last `span` source positions.
func AttentionHeatmap(m *ml.AttentionLSTM, seq Sequence, targets, span int) Heatmap {
	weights := m.AttentionWeights(seq.Tokens, seq.PredictFrom)
	if targets > len(weights) {
		targets = len(weights)
	}
	hm := Heatmap{Offsets: make([]int, span)}
	for j := 0; j < span; j++ {
		hm.Offsets[j] = -(span - j)
	}
	for i := 0; i < targets; i++ {
		row := weights[i] // sources 0..predictFrom+i-1
		cols := make([]float64, span)
		for j := 0; j < span; j++ {
			idx := len(row) - span + j
			if idx >= 0 {
				cols[j] = row[idx]
			}
		}
		hm.Rows = append(hm.Rows, cols)
	}
	return hm
}

// ShuffleResult compares accuracy on the original and source-shuffled test
// sequences (Figure 6): for each predicted timestep the warmup/source
// prefix is randomly permuted before prediction.
type ShuffleResult struct {
	// Original and Shuffled are the respective test accuracies.
	Original, Shuffled float64
}

// ShuffleStudy evaluates the order sensitivity of a trained LSTM.
func ShuffleStudy(m *ml.AttentionLSTM, seqs []Sequence, maxSeqs int, seed int64) ShuffleResult {
	if maxSeqs > 0 && len(seqs) > maxSeqs {
		seqs = seqs[:maxSeqs]
	}
	r := rand.New(rand.NewSource(seed))
	var res ShuffleResult
	correctO, correctS, total := 0, 0, 0
	for _, s := range seqs {
		co, t := m.EvalSequence(s.Tokens, s.Labels, s.PredictFrom)
		correctO += co
		total += t

		shuffled := append([]int(nil), s.Tokens...)
		prefix := shuffled[:s.PredictFrom]
		r.Shuffle(len(prefix), func(i, j int) { prefix[i], prefix[j] = prefix[j], prefix[i] })
		cs, _ := m.EvalSequence(shuffled, s.Labels, s.PredictFrom)
		correctS += cs
	}
	res.Original = ratio(correctO, total)
	res.Shuffled = ratio(correctS, total)
	return res
}

// AnchorResult is one row of Table 4: a target PC, its strongest source
// ("anchor") PC, and the accuracy of Hawkeye's per-PC predictor vs the
// attention LSTM on that target's accesses.
type AnchorResult struct {
	TargetPC        uint64
	AnchorPC        uint64
	HawkeyeAccuracy float64
	LSTMAccuracy    float64
	Samples         int
}

// AnchorStudy reproduces Table 4: for each requested target PC it measures
// per-PC accuracy under Hawkeye's counters and under the LSTM, and
// identifies the anchor PC (the source position with the highest average
// attention weight, mapped back to its PC).
func AnchorStudy(d *Dataset, m *ml.AttentionLSTM, hk *ml.HawkeyeCounters, targets []uint64, histLen, maxSeqs int) []AnchorResult {
	type attnAcc struct {
		weight float64
		count  int
	}
	want := make(map[uint64]*AnchorResult, len(targets))
	attnByPC := make(map[uint64]map[uint64]*attnAcc, len(targets))
	lstmCorrect := make(map[uint64]int)
	hkCorrect := make(map[uint64]int)
	samples := make(map[uint64]int)
	for _, t := range targets {
		want[t] = &AnchorResult{TargetPC: t}
		attnByPC[t] = make(map[uint64]*attnAcc)
	}

	seqs := d.Sequences(histLen, false)
	if maxSeqs > 0 && len(seqs) > maxSeqs {
		seqs = seqs[:maxSeqs]
	}
	for _, s := range seqs {
		preds := m.Predict(s.Tokens, s.PredictFrom)
		weights := m.AttentionWeights(s.Tokens, s.PredictFrom)
		for i, pred := range preds {
			t := s.PredictFrom + i
			pc := d.Vocab[s.Tokens[t]]
			r, ok := want[pc]
			if !ok {
				continue
			}
			_ = r
			label := s.Labels[t]
			samples[pc]++
			if pred == label {
				lstmCorrect[pc]++
			}
			if hk.Predict(pc) == label {
				hkCorrect[pc]++
			}
			for srcIdx, w := range weights[i] {
				srcPC := d.Vocab[s.Tokens[srcIdx]]
				a := attnByPC[pc][srcPC]
				if a == nil {
					a = &attnAcc{}
					attnByPC[pc][srcPC] = a
				}
				a.weight += w
				a.count++
			}
		}
	}

	out := make([]AnchorResult, 0, len(targets))
	for _, t := range targets {
		r := want[t]
		r.Samples = samples[t]
		r.HawkeyeAccuracy = ratio(hkCorrect[t], samples[t])
		r.LSTMAccuracy = ratio(lstmCorrect[t], samples[t])
		// Anchor: the source PC with the greatest *mean* attention weight
		// per occurrence (cumulative mass would be dominated by whichever
		// PC merely appears most often), excluding the target PC itself
		// and PCs too rare to estimate.
		type kv struct {
			pc uint64
			w  float64
		}
		minCount := samples[t] / 10
		var kvs []kv
		for pc, a := range attnByPC[t] {
			if pc != t && a.count > minCount {
				kvs = append(kvs, kv{pc, a.weight / float64(a.count)})
			}
		}
		sort.Slice(kvs, func(i, j int) bool { return kvs[i].w > kvs[j].w })
		if len(kvs) > 0 {
			r.AnchorPC = kvs[0].pc
		}
		out = append(out, *r)
	}
	return out
}

// HistoryLengthSweep runs the Figure 14 experiment: accuracy as a function
// of history length for the three offline models. lstmLens are sequence
// lengths N; linearKs are unique-PC counts for the ISVM and ordered history
// lengths for the Perceptron.
type HistoryLengthSweep struct {
	LSTMLens   []int
	LSTMAcc    []float64
	ISVMKs     []int
	ISVMAcc    []float64
	Perceptron []int
	PercAcc    []float64
}

// SweepHistoryLength runs the sweep with the given training budgets.
func SweepHistoryLength(d *Dataset, lstmLens, linearKs []int, lstmOpts LSTMOptions, linearEpochs int) (HistoryLengthSweep, error) {
	var out HistoryLengthSweep
	for _, n := range lstmLens {
		o := lstmOpts
		o.HistoryLen = n
		_, res, err := TrainLSTM(d, o)
		if err != nil {
			return out, err
		}
		out.LSTMLens = append(out.LSTMLens, n)
		out.LSTMAcc = append(out.LSTMAcc, res.FinalAccuracy())
	}
	for _, k := range linearKs {
		_, res := TrainISVMOffline(d, k, linearEpochs)
		out.ISVMKs = append(out.ISVMKs, k)
		out.ISVMAcc = append(out.ISVMAcc, res.FinalAccuracy())

		_, pres := TrainOrderedSVMOffline(d, k, linearEpochs)
		out.Perceptron = append(out.Perceptron, k)
		out.PercAcc = append(out.PercAcc, pres.FinalAccuracy())
	}
	return out, nil
}
