package policy

// Fuzz targets for the reuse-distance policy family: arbitrary access
// streams must never panic, never evict an invalid way (cache.Access panics
// on one), and produce bit-identical results when replayed on a fresh
// instance — the determinism property the byte-identity differential suites
// rest on. Seed corpora live in testdata/fuzz and replay under plain
// `go test`; `make fuzz-smoke` gives the targets a mutation budget.

import (
	"testing"

	"glider/internal/cache"
	"glider/internal/trace"
)

// fuzzAccess is one decoded fuzz record.
type fuzzAccess struct {
	pc, block uint64
	kind      trace.Kind
}

// decodeFuzzStream turns raw bytes into a bounded access stream. 4 bytes
// per access: PC selector, two block bytes, kind selector. Small domains on
// purpose — collisions in sets, blocks, and PCs are where replacement
// logic actually runs.
func decodeFuzzStream(data []byte) []fuzzAccess {
	const maxAccesses = 4096
	var out []fuzzAccess
	for i := 0; i+4 <= len(data) && len(out) < maxAccesses; i += 4 {
		out = append(out, fuzzAccess{
			pc:    uint64(data[i] & 0x1f),
			block: uint64(data[i+1]) | uint64(data[i+2])<<8,
			kind:  trace.Kind(data[i+3] % 3),
		})
	}
	return out
}

// runFuzzStream drives a fresh cache+policy over the stream and returns the
// per-access results.
func runFuzzStream(p cache.Policy, accs []fuzzAccess, sets, ways int) []cache.AccessResult {
	c, err := cache.New(cache.Config{Name: "fuzz", Sets: sets, Ways: ways}, p)
	if err != nil {
		panic(err)
	}
	out := make([]cache.AccessResult, len(accs))
	for i, a := range accs {
		out[i] = c.Access(a.pc, a.block, 0, a.kind)
	}
	return out
}

// fuzzVictimDirect calls Victim directly against partially-valid line
// arrays — states the cache never presents (it fills invalid ways itself)
// but the contract still covers.
func fuzzVictimDirect(t *testing.T, p cache.Policy, accs []fuzzAccess, sets, ways int) {
	t.Helper()
	lines := make([]cache.Line, ways)
	for i, a := range accs {
		for w := range lines {
			lines[w] = cache.Line{Valid: (i+w)%3 != 0, Tag: a.block + uint64(w), PC: a.pc}
		}
		set := int(a.block) & (sets - 1)
		if v := p.Victim(set, a.pc, a.block, 0, lines); v != cache.Bypass && (v < 0 || v >= ways) {
			t.Fatalf("%s: Victim returned invalid way %d (ways=%d)", p.Name(), v, ways)
		}
	}
}

func FuzzFRDAccess(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 0, 0, 1, 2, 0, 0, 3, 4, 1, 1})
	f.Add(func() []byte {
		var b []byte
		for i := 0; i < 512; i++ {
			b = append(b, byte(i%7), byte(i), byte(i>>3), byte(i%5))
		}
		return b
	}())
	f.Fuzz(func(t *testing.T, data []byte) {
		const sets, ways = 16, 4
		accs := decodeFuzzStream(data)
		a := runFuzzStream(NewFRD(sets, ways), accs, sets, ways)
		b := runFuzzStream(NewFRD(sets, ways), accs, sets, ways)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("FRD nondeterministic at access %d: %+v vs %+v", i, a[i], b[i])
			}
		}
		fuzzVictimDirect(t, NewFRD(sets, ways), accs, sets, ways)
	})
}

func FuzzMSAAccess(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{4, 1, 2, 0, 0, 1, 2, 0, 0, 3, 4, 1, 1})
	f.Add(func() []byte {
		b := []byte{2}
		for i := 0; i < 512; i++ {
			b = append(b, byte(i%7), byte(i), byte(i>>3), byte(i%5))
		}
		return b
	}())
	f.Fuzz(func(t *testing.T, data []byte) {
		const sets, ways = 16, 4
		k := 1
		if len(data) > 0 {
			k = int(data[0]%msaMaxSteps) + 1
			data = data[1:]
		}
		accs := decodeFuzzStream(data)
		a := runFuzzStream(NewMSAK(sets, ways, k), accs, sets, ways)
		b := runFuzzStream(NewMSAK(sets, ways, k), accs, sets, ways)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("MSA(k=%d) nondeterministic at access %d: %+v vs %+v", k, i, a[i], b[i])
			}
		}
		fuzzVictimDirect(t, NewMSAK(sets, ways, k), accs, sets, ways)
	})
}
