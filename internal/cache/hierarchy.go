package cache

import (
	"fmt"

	"glider/internal/trace"
)

// Level identifies where in the hierarchy an access was satisfied.
type Level int

// Hierarchy levels, in lookup order.
const (
	LevelL1 Level = iota
	LevelL2
	LevelLLC
	LevelDRAM
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelLLC:
		return "LLC"
	case LevelDRAM:
		return "DRAM"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// HierarchyResult describes where an access hit and what traffic it caused.
type HierarchyResult struct {
	// HitLevel is the first level that held the block (LevelDRAM on a full
	// miss).
	HitLevel Level
	// LLCAccessed reports whether the access reached the LLC (i.e. missed
	// in L1 and L2) — these are the accesses replacement studies train on.
	LLCAccessed bool
	// LLCHit reports the LLC outcome when LLCAccessed.
	LLCHit bool
	// DRAMWriteback reports whether a dirty LLC eviction generated DRAM
	// write traffic; WritebackBlock is the evicted block's address.
	DRAMWriteback  bool
	WritebackBlock uint64
}

// Hierarchy is the three-level cache hierarchy of Table 1: private L1 and L2
// per core, and an LLC (private in single-core runs, shared in multi-core
// runs) whose replacement policy is the subject of study.
type Hierarchy struct {
	l1  []*Cache // per core
	l2  []*Cache // per core
	llc *Cache
}

// LRUFactory builds the LRU policy used for the fixed upper levels. It is a
// variable so the policy package can inject its implementation without an
// import cycle; main packages normally use hierarchyBuilder helpers from the
// sim package instead.
type LRUFactory func(sets, ways int) Policy

// NewHierarchy builds a hierarchy with `cores` private L1/L2 pairs (using
// upperPolicy to build their replacement state) and the given shared LLC.
//
// A nil upperPolicy selects the specialized fast LRU path (fastlru.go) for
// the upper levels, which is bit-identical to New with the policy package's
// LRU but avoids the per-access interface dispatch. Pass an explicit factory
// only when the upper-level replacement state itself is under study.
func NewHierarchy(cores int, llcCfg Config, llcPolicy Policy, upperPolicy LRUFactory) (*Hierarchy, error) {
	if cores <= 0 {
		return nil, fmt.Errorf("cache: cores must be positive, got %d", cores)
	}
	newUpper := func(cfg Config) (*Cache, error) {
		if upperPolicy == nil {
			return NewUpperLRU(cfg)
		}
		return New(cfg, upperPolicy(cfg.Sets, cfg.Ways))
	}
	h := &Hierarchy{}
	for i := 0; i < cores; i++ {
		l1, err := newUpper(L1DConfig)
		if err != nil {
			return nil, err
		}
		l2, err := newUpper(L2Config)
		if err != nil {
			return nil, err
		}
		h.l1 = append(h.l1, l1)
		h.l2 = append(h.l2, l2)
	}
	llc, err := New(llcCfg, llcPolicy)
	if err != nil {
		return nil, err
	}
	h.llc = llc
	return h, nil
}

// Cores returns the number of cores the hierarchy serves.
func (h *Hierarchy) Cores() int { return len(h.l1) }

// LLC exposes the last-level cache.
func (h *Hierarchy) LLC() *Cache { return h.llc }

// L1 exposes core i's L1 data cache.
func (h *Hierarchy) L1(core int) *Cache { return h.l1[core] }

// L2 exposes core i's L2 cache.
func (h *Hierarchy) L2(core int) *Cache { return h.l2[core] }

// Access sends one demand access down the hierarchy and returns where it
// hit. Dirty evictions propagate as writebacks to the next level.
func (h *Hierarchy) Access(a trace.Access) HierarchyResult {
	core := int(a.Core)
	if core >= len(h.l1) {
		core = 0
	}
	block := a.Block()
	var res HierarchyResult

	// L1.
	r1 := h.l1[core].Access(a.PC, block, a.Core, a.Kind)
	if r1.WritebackNeeded {
		h.writebackToL2(core, r1.EvictedLine)
	}
	if r1.Hit {
		res.HitLevel = LevelL1
		return res
	}

	// L2.
	r2 := h.l2[core].Access(a.PC, block, a.Core, a.Kind)
	if r2.WritebackNeeded {
		h.writebackToLLC(r2.EvictedLine)
	}
	if r2.Hit {
		res.HitLevel = LevelL2
		return res
	}

	// LLC: demand loads and stores both allocate.
	res.LLCAccessed = true
	r3 := h.llc.Access(a.PC, block, a.Core, a.Kind)
	res.LLCHit = r3.Hit
	if r3.Hit {
		res.HitLevel = LevelLLC
	} else {
		res.HitLevel = LevelDRAM
	}
	if r3.WritebackNeeded {
		res.DRAMWriteback = true
		res.WritebackBlock = r3.EvictedLine.Tag
	}
	return res
}

func (h *Hierarchy) writebackToL2(core int, l Line) {
	r := h.l2[core].Access(l.PC, l.Tag, l.Core, trace.Writeback)
	if r.WritebackNeeded {
		h.writebackToLLC(r.EvictedLine)
	}
}

func (h *Hierarchy) writebackToLLC(l Line) {
	// Writebacks that miss the LLC allocate (write-allocate) but do not
	// generate further recursive traffic beyond a DRAM write, which the
	// timing model accounts for separately via LLC stats.
	h.llc.Access(l.PC, l.Tag, l.Core, trace.Writeback)
}

// ResetStats zeroes counters at every level (post-warmup).
func (h *Hierarchy) ResetStats() {
	for i := range h.l1 {
		h.l1[i].ResetStats()
		h.l2[i].ResetStats()
	}
	h.llc.ResetStats()
}
