package estimate

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"

	"glider/internal/cpu"
	"glider/internal/ml"
	"glider/internal/obs"
	"glider/internal/simrunner"
	"glider/internal/workload"
)

// TrainConfig sizes a training run. Zero values take the documented
// defaults, so callers set only what they mean to change.
type TrainConfig struct {
	// Workloads are the training workloads — anything workload.Resolve
	// accepts. At least two, so the feature hull has width.
	Workloads []string
	// Policies are the policy names to train heads for.
	Policies []string
	// AccessesList are the trace lengths simulated per workload. One value
	// trains a model valid only at that length (the hull pins
	// log2_accesses); multiple values widen the hull across lengths.
	AccessesList []int
	// Seed is the base trace seed. Training simulates the same
	// (workload, accesses) grid at FitSeeds+2 consecutive seeds and splits
	// by seed: seeds Seed .. Seed+FitSeeds−1 fit the linear heads, seed
	// Seed+FitSeeds becomes the anchor split (its exact values are stored
	// in the model and every prediction is corrected against its nearest
	// anchor), and seed Seed+FitSeeds+1 is the calibration split — fresh
	// traces of the same workloads, predicted by the full anchored model,
	// which is exactly the error mode the gate admits at serving time:
	// predicting an unseen trace of an in-hull workload. Held-out-workload
	// generalization is intentionally NOT what the bounds promise; queries
	// outside the feature hull are refused by the gate instead.
	Seed int64
	// FitSeeds is the number of fit-split seeds (default 1). More seeds
	// teach the heads to average across trace-seed jitter, shrinking the
	// calibration residuals and therefore the bounds — at proportional
	// training cost.
	FitSeeds int
	// Lambda is the ridge penalty (default 0.05).
	Lambda float64
	// Inflate multiplies the max calibration residual into the conformal
	// bound (default 2.0) — headroom so bounds survive distribution drift
	// between calibration and serving.
	Inflate float64
	// MinMissBound / MinIPCBound floor the bounds (defaults 0.015 / 0.03):
	// a zero calibration residual must not produce a zero-width bound.
	MinMissBound, MinIPCBound float64
	// Slack / AbsSlack widen the gate's feature hull: relative to the
	// per-feature training span (default 0.35) and absolutely (default
	// 0.02) for near-constant features under seed jitter.
	Slack, AbsSlack float64
	// Workers bounds concurrent simulation jobs (0 = one per CPU). Results
	// are bit-identical for every worker count.
	Workers int
	// Progress/Obs/Sink are forwarded to the simulation runner.
	Progress func(simrunner.Progress)
	Obs      *obs.Registry
	Sink     obs.Sink
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.Lambda <= 0 {
		c.Lambda = 0.05
	}
	if c.Inflate <= 0 {
		c.Inflate = 2.0
	}
	if c.MinMissBound <= 0 {
		c.MinMissBound = 0.015
	}
	if c.MinIPCBound <= 0 {
		c.MinIPCBound = 0.03
	}
	if c.Slack <= 0 {
		c.Slack = 0.35
	}
	if c.AbsSlack <= 0 {
		c.AbsSlack = 0.02
	}
	if c.FitSeeds <= 0 {
		c.FitSeeds = 1
	}
	return c
}

// PolicyEval is one policy's held-out calibration evaluation, computed on
// the quantized heads (the exact model that serves).
type PolicyEval struct {
	Policy string `json:"policy"`
	// MAEMiss / MAEIPC are mean absolute calibration residuals.
	MAEMiss float64 `json:"mae_miss"`
	MAEIPC  float64 `json:"mae_ipc"`
	// QMiss / QIPC are the resulting conformal bounds.
	QMiss float64 `json:"q_miss"`
	QIPC  float64 `json:"q_ipc"`
	// FitSamples / CalibSamples count the split sizes.
	FitSamples   int `json:"fit_samples"`
	CalibSamples int `json:"calib_samples"`
}

// Report summarizes a training run.
type Report struct {
	Cells        int          `json:"cells"`
	Workloads    []string     `json:"workloads"`
	AccessesList []int        `json:"accesses_list"`
	Seed         int64        `json:"seed"`
	CalibSeed    int64        `json:"calib_seed"`
	Policies     []PolicyEval `json:"policies"`
	MeanMAEMiss  float64      `json:"mean_mae_miss"`
	MeanMAEIPC   float64      `json:"mean_mae_ipc"`
	MaxQMiss     float64      `json:"max_q_miss"`
	MaxQIPC      float64      `json:"max_q_ipc"`
}

// Render writes the per-policy evaluation table.
func (r Report) Render(w io.Writer) {
	fmt.Fprintf(w, "Surrogate training: %d cells over %d workloads (fit seed %d, calib seed %d)\n",
		r.Cells, len(r.Workloads), r.Seed, r.CalibSeed)
	fmt.Fprintf(w, "  %-10s %9s %9s %9s %9s\n", "policy", "MAE miss", "Q miss", "MAE ipc", "Q ipc")
	for _, p := range r.Policies {
		fmt.Fprintf(w, "  %-10s %9.4f %9.4f %9.4f %9.4f\n", p.Policy, p.MAEMiss, p.QMiss, p.MAEIPC, p.QIPC)
	}
	fmt.Fprintf(w, "  mean MAE miss %.4f, ipc %.4f; max bound miss %.4f, ipc %.4f\n",
		r.MeanMAEMiss, r.MeanMAEIPC, r.MaxQMiss, r.MaxQIPC)
}

// trainPair is one (workload, accesses, seed) training point: its features
// plus the exact simulation outcome per policy.
type trainPair struct {
	spec     workload.Spec
	accesses int
	seed     int64
	feats    []float64
	miss     []float64 // by policy index
	ipc      []float64
}

// Train simulates the (workload, accesses, policy) grid exactly at
// FitSeeds+2 consecutive seeds, extracts features per (workload, accesses,
// seed) triple, fits per-policy quantized ridge heads on the fit split,
// stores the anchor split's exact values for anchored prediction, and
// calibrates conformal bounds on the calibration split — fresh traces of
// the same workloads, predicted by the full anchored model, the
// distribution the confidence gate admits at serving time.
// Training is deterministic: simulation results are assembled by index,
// feature aggregates are order-free, and the solver is pivoted Gaussian
// elimination — the same config yields a bit-identical model for any worker
// count, rerun, or machine.
func Train(ctx context.Context, cfg TrainConfig) (*Estimator, Report, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Workloads) < 2 {
		return nil, Report{}, fmt.Errorf("estimate: training needs >= 2 workloads, got %d", len(cfg.Workloads))
	}
	if len(cfg.Policies) == 0 {
		return nil, Report{}, fmt.Errorf("estimate: training needs >= 1 policy")
	}
	if len(cfg.AccessesList) == 0 {
		return nil, Report{}, fmt.Errorf("estimate: training needs >= 1 accesses value")
	}
	specs := make([]workload.Spec, len(cfg.Workloads))
	for i, name := range cfg.Workloads {
		spec, err := workload.Resolve(name)
		if err != nil {
			return nil, Report{}, fmt.Errorf("estimate: training workload %q: %w", name, err)
		}
		specs[i] = spec
	}

	// One pair per (workload, accesses, seed); features come from the same
	// shared trace the simulations consume.
	anchorSeed := cfg.Seed + int64(cfg.FitSeeds)
	calibSeed := anchorSeed + 1
	var fit, anchor, calib []*trainPair
	for _, spec := range specs {
		for _, acc := range cfg.AccessesList {
			for seed := cfg.Seed; seed <= calibSeed; seed++ {
				t, err := workload.SharedE(spec, acc, seed)
				if err != nil {
					return nil, Report{}, fmt.Errorf("estimate: trace for %s/%d: %w", spec.Name, acc, err)
				}
				p := &trainPair{
					spec: spec, accesses: acc, seed: seed,
					feats: Features(t),
					miss:  make([]float64, len(cfg.Policies)),
					ipc:   make([]float64, len(cfg.Policies)),
				}
				switch {
				case seed < anchorSeed:
					fit = append(fit, p)
				case seed == anchorSeed:
					anchor = append(anchor, p)
				default:
					calib = append(calib, p)
				}
			}
		}
	}
	pairs := append(append(append([]*trainPair(nil), fit...), anchor...), calib...)

	// Exact simulation of the full training grid on the parallel runner.
	type cell struct{ miss, ipc float64 }
	var jobs []simrunner.Job[cell]
	type slot struct{ pair, pol int }
	var slots []slot
	for pi, pair := range pairs {
		for qi, pol := range cfg.Policies {
			pair, pol := pair, pol
			jobs = append(jobs, simrunner.Job[cell]{
				Key: simrunner.Key("estimate-train", pair.spec.Name, strconv.Itoa(pair.accesses), strconv.FormatInt(pair.seed, 10), pol),
				Run: func(ctx context.Context) (cell, error) {
					res, err := cpu.SingleCore(ctx, pair.spec, pol, pair.accesses, pair.seed)
					if err != nil {
						return cell{}, fmt.Errorf("estimate train %s/%s: %w", pair.spec.Name, pol, err)
					}
					return cell{miss: res.LLC.MissRate(), ipc: res.IPC}, nil
				},
			})
			slots = append(slots, slot{pi, qi})
		}
	}
	opts := simrunner.Options{Workers: cfg.Workers, Progress: cfg.Progress, Obs: cfg.Obs, Sink: cfg.Sink}
	values, err := simrunner.Values(simrunner.Run(ctx, opts, jobs))
	if err != nil {
		return nil, Report{}, err
	}
	for i, v := range values {
		pairs[slots[i].pair].miss[slots[i].pol] = v.miss
		pairs[slots[i].pair].ipc[slots[i].pol] = v.ipc
	}

	est := &Estimator{
		Schema:       SchemaVersion,
		Names:        FeatureNames(),
		Slack:        cfg.Slack,
		AbsSlack:     cfg.AbsSlack,
		Inflate:      cfg.Inflate,
		MinMissBound: cfg.MinMissBound,
		MinIPCBound:  cfg.MinIPCBound,
		Heads:        make(map[string]*Head, len(cfg.Policies)),
	}
	est.Mean, est.Scale = standardStats(fit)
	est.Min, est.Max = hull(pairs)

	fitRows := make([][]float64, len(fit))
	for i, p := range fit {
		fitRows[i] = est.standardize(p.feats)
	}
	anchorRows := make([][]float64, len(anchor))
	for i, p := range anchor {
		anchorRows[i] = est.standardize(p.feats)
	}
	calibRows := make([][]float64, len(calib))
	for i, p := range calib {
		calibRows[i] = est.standardize(p.feats)
	}
	est.AnchorFeats = anchorRows
	est.CalibFeats = calibRows

	report := Report{
		Cells:        len(jobs),
		AccessesList: append([]int(nil), cfg.AccessesList...),
		Seed:         cfg.Seed,
		CalibSeed:    calibSeed,
	}
	for _, spec := range specs {
		report.Workloads = append(report.Workloads, spec.Name)
	}

	// Per-policy heads, fitted in sorted policy order (determinism is by
	// construction here — each fit is independent — but sorted order keeps
	// the report stable however cfg.Policies was spelled).
	polOrder := make([]int, len(cfg.Policies))
	for i := range polOrder {
		polOrder[i] = i
	}
	sort.Slice(polOrder, func(a, b int) bool { return cfg.Policies[polOrder[a]] < cfg.Policies[polOrder[b]] })
	for _, qi := range polOrder {
		pol := cfg.Policies[qi]
		if _, dup := est.Heads[pol]; dup {
			return nil, Report{}, fmt.Errorf("estimate: duplicate policy %q in training config", pol)
		}
		yMiss := make([]float64, len(fit))
		yIPC := make([]float64, len(fit))
		for i, p := range fit {
			yMiss[i] = p.miss[qi]
			yIPC[i] = p.ipc[qi]
		}
		missM, err := ml.FitRidgeQuantized(fitRows, yMiss, cfg.Lambda)
		if err != nil {
			return nil, Report{}, fmt.Errorf("estimate: fitting %s miss head: %w", pol, err)
		}
		ipcM, err := ml.FitRidgeQuantized(fitRows, yIPC, cfg.Lambda)
		if err != nil {
			return nil, Report{}, fmt.Errorf("estimate: fitting %s ipc head: %w", pol, err)
		}

		ev := PolicyEval{Policy: pol, FitSamples: len(fit), CalibSamples: len(calib)}
		head := &Head{
			Miss: missM, IPC: ipcM, Samples: len(fit),
			AnchorMiss: make([]float64, len(anchor)),
			AnchorIPC:  make([]float64, len(anchor)),
			CalibMiss:  make([]float64, len(calib)),
			CalibIPC:   make([]float64, len(calib)),
			NoiseMiss:  make([]float64, len(calib)),
			NoiseIPC:   make([]float64, len(calib)),
		}
		for i, p := range anchor {
			head.AnchorMiss[i] = p.miss[qi]
			head.AnchorIPC[i] = p.ipc[qi]
		}
		// Calibration residuals of the full anchored predictor — the exact
		// function that serves.
		var maxMiss, maxIPC float64
		for i, p := range calib {
			predMiss, predIPC := est.predictHead(head, calibRows[i])
			rMiss := math.Abs(predMiss - p.miss[qi])
			rIPC := math.Abs(predIPC - p.ipc[qi])
			head.CalibMiss[i] = rMiss
			head.CalibIPC[i] = rIPC
			ev.MAEMiss += rMiss / float64(len(calib))
			ev.MAEIPC += rIPC / float64(len(calib))
			maxMiss = math.Max(maxMiss, rMiss)
			maxIPC = math.Max(maxIPC, rIPC)
		}
		head.MeanMiss, head.MeanIPC = ev.MAEMiss, ev.MAEIPC
		// Aleatoric floor per grid point: the target's spread across every
		// training seed of that (workload, accesses) pair. Keyed min/max
		// accumulation keeps this order-free.
		type span struct{ loM, hiM, loI, hiI float64 }
		spans := make(map[string]*span)
		for _, p := range pairs {
			k := p.spec.Name + "\x00" + strconv.Itoa(p.accesses)
			s, ok := spans[k]
			if !ok {
				spans[k] = &span{loM: p.miss[qi], hiM: p.miss[qi], loI: p.ipc[qi], hiI: p.ipc[qi]}
				continue
			}
			s.loM = math.Min(s.loM, p.miss[qi])
			s.hiM = math.Max(s.hiM, p.miss[qi])
			s.loI = math.Min(s.loI, p.ipc[qi])
			s.hiI = math.Max(s.hiI, p.ipc[qi])
		}
		var maxNoiseMiss, maxNoiseIPC float64
		for i, p := range calib {
			s := spans[p.spec.Name+"\x00"+strconv.Itoa(p.accesses)]
			head.NoiseMiss[i] = s.hiM - s.loM
			head.NoiseIPC[i] = s.hiI - s.loI
			maxNoiseMiss = math.Max(maxNoiseMiss, head.NoiseMiss[i])
			maxNoiseIPC = math.Max(maxNoiseIPC, head.NoiseIPC[i])
		}
		ev.QMiss = math.Max(cfg.Inflate*(maxMiss+maxNoiseMiss), cfg.MinMissBound)
		ev.QIPC = math.Max(cfg.Inflate*(maxIPC+maxNoiseIPC), cfg.MinIPCBound)
		head.QMiss, head.QIPC = ev.QMiss, ev.QIPC
		est.Heads[pol] = head

		report.Policies = append(report.Policies, ev)
		report.MeanMAEMiss += ev.MAEMiss / float64(len(cfg.Policies))
		report.MeanMAEIPC += ev.MAEIPC / float64(len(cfg.Policies))
		report.MaxQMiss = math.Max(report.MaxQMiss, ev.QMiss)
		report.MaxQIPC = math.Max(report.MaxQIPC, ev.QIPC)
	}
	return est, report, nil
}

// standardStats computes per-feature mean and standard deviation over the
// fit pairs; constant features get scale 1 so standardization is a no-op on
// them (and the ridge penalty zeroes their weight).
func standardStats(fit []*trainPair) (mean, scale []float64) {
	mean = make([]float64, FeatureDim)
	scale = make([]float64, FeatureDim)
	n := float64(len(fit))
	for _, p := range fit {
		for i, x := range p.feats {
			mean[i] += x / n
		}
	}
	for _, p := range fit {
		for i, x := range p.feats {
			d := x - mean[i]
			scale[i] += d * d / n
		}
	}
	for i := range scale {
		if s := math.Sqrt(scale[i]); s > 1e-9 {
			scale[i] = s
		} else {
			scale[i] = 1
		}
	}
	return mean, scale
}

// hull computes the per-feature min/max over all training pairs.
func hull(pairs []*trainPair) (lo, hi []float64) {
	lo = make([]float64, FeatureDim)
	hi = make([]float64, FeatureDim)
	for i := range lo {
		lo[i] = math.Inf(1)
		hi[i] = math.Inf(-1)
	}
	for _, p := range pairs {
		for i, x := range p.feats {
			lo[i] = math.Min(lo[i], x)
			hi[i] = math.Max(hi[i], x)
		}
	}
	return lo, hi
}
