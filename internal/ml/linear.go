package ml

// Offline linear baselines from the paper's evaluation (§5.2):
//
//   - OfflineISVM: the paper's Integer SVM over the k-sparse binary feature
//     (the last k *unique* PCs, unordered) trained with hinge loss — the
//     offline counterpart of Glider's hardware predictor.
//   - OrderedSVM: the paper's re-implementation of the Perceptron baseline,
//     an SVM with the same hinge loss over an *ordered* history of the last
//     h PCs (each position is its own feature dimension), trained from
//     Belady labels.
//   - HawkeyeCounters: Hawkeye's per-PC saturating-counter predictor, the
//     statistical baseline both are compared against.

// OfflineISVM is an integer SVM over per-PC weight vectors indexed by the
// unordered set of recent unique PCs. Fact 1 of §4.3: with binary features,
// gradient descent with learning rate 1/n on margin 1 equals learning rate
// 1 on margin n, so weights stay integral; StepInverse is that n.
type OfflineISVM struct {
	// K is the number of unique history PCs used as features.
	K int
	// StepInverse is n in Fact 1 (the paper's step size 0.001 → n = 1000).
	StepInverse int
	// weights[pc][featurePC] — materialized lazily per observed pair.
	weights map[uint64]map[uint64]int
}

// NewOfflineISVM builds the model. k=5 and stepInverse=1000 reproduce
// Table 5.
func NewOfflineISVM(k, stepInverse int) *OfflineISVM {
	if k <= 0 {
		k = 5
	}
	if stepInverse <= 0 {
		stepInverse = 1000
	}
	return &OfflineISVM{K: k, StepInverse: stepInverse, weights: make(map[uint64]map[uint64]int)}
}

// Sum returns the margin for (pc, unique-history).
func (m *OfflineISVM) Sum(pc uint64, history []uint64) int {
	w := m.weights[pc]
	if w == nil {
		return 0
	}
	s := 0
	for _, h := range history {
		s += w[h]
	}
	return s
}

// Predict classifies (pc, history) as cache-friendly.
func (m *OfflineISVM) Predict(pc uint64, history []uint64) bool {
	return m.Sum(pc, history) >= 0
}

// Train applies one hinge-loss subgradient step on the sample.
func (m *OfflineISVM) Train(pc uint64, history []uint64, friendly bool) {
	y := 1
	if !friendly {
		y = -1
	}
	sum := m.Sum(pc, history)
	// Hinge: update only while y·sum < margin n (Equation 5).
	if y*sum >= m.StepInverse {
		return
	}
	w := m.weights[pc]
	if w == nil {
		w = make(map[uint64]int, m.K*4)
		m.weights[pc] = w
	}
	for _, h := range history {
		w[h] += y
	}
}

// NumWeights returns the materialized weight count.
func (m *OfflineISVM) NumWeights() int {
	n := 0
	for _, w := range m.weights {
		n += len(w)
	}
	return n
}

// OrderedSVM is the Perceptron baseline: hinge-loss SVM whose features are
// the last H PCs *with position* — (position, pc) pairs are distinct
// dimensions, so the model must learn every ordering separately (§5.2,
// footnote 8).
type OrderedSVM struct {
	// H is the ordered history length (paper baseline: 3).
	H int
	// StepInverse is the hinge margin as in OfflineISVM.
	StepInverse int
	weights     map[uint64]map[orderedFeature]int
}

type orderedFeature struct {
	pos int
	pc  uint64
}

// NewOrderedSVM builds the model; h=3 reproduces the paper baseline.
func NewOrderedSVM(h, stepInverse int) *OrderedSVM {
	if h <= 0 {
		h = 3
	}
	if stepInverse <= 0 {
		stepInverse = 1000
	}
	return &OrderedSVM{H: h, StepInverse: stepInverse, weights: make(map[uint64]map[orderedFeature]int)}
}

// Sum returns the margin for (pc, ordered history). history[0] is the most
// recent PC.
func (m *OrderedSVM) Sum(pc uint64, history []uint64) int {
	w := m.weights[pc]
	if w == nil {
		return 0
	}
	s := 0
	for i, h := range history {
		if i >= m.H {
			break
		}
		s += w[orderedFeature{i, h}]
	}
	return s
}

// Predict classifies the sample as cache-friendly.
func (m *OrderedSVM) Predict(pc uint64, history []uint64) bool {
	return m.Sum(pc, history) >= 0
}

// Train applies one hinge update.
func (m *OrderedSVM) Train(pc uint64, history []uint64, friendly bool) {
	y := 1
	if !friendly {
		y = -1
	}
	if y*m.Sum(pc, history) >= m.StepInverse {
		return
	}
	w := m.weights[pc]
	if w == nil {
		w = make(map[orderedFeature]int, m.H*8)
		m.weights[pc] = w
	}
	for i, h := range history {
		if i >= m.H {
			break
		}
		w[orderedFeature{i, h}] += y
	}
}

// NumWeights returns the materialized weight count.
func (m *OrderedSVM) NumWeights() int {
	n := 0
	for _, w := range m.weights {
		n += len(w)
	}
	return n
}

// HawkeyeCounters is the offline version of Hawkeye's predictor: one
// saturating counter per PC, trained directly from oracle labels.
type HawkeyeCounters struct {
	// Max bounds the counters at ±Max.
	Max      int
	counters map[uint64]int
}

// NewHawkeyeCounters builds the baseline with 5-bit-equivalent counters.
func NewHawkeyeCounters() *HawkeyeCounters {
	return &HawkeyeCounters{Max: 15, counters: make(map[uint64]int)}
}

// Predict classifies a PC as cache-friendly.
func (m *HawkeyeCounters) Predict(pc uint64) bool { return m.counters[pc] >= 0 }

// Train adjusts the PC's counter toward the oracle label.
func (m *HawkeyeCounters) Train(pc uint64, friendly bool) {
	c := m.counters[pc]
	if friendly {
		if c < m.Max {
			m.counters[pc] = c + 1
		}
	} else {
		if c > -m.Max-1 {
			m.counters[pc] = c - 1
		}
	}
}
