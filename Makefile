GO ?= go

.PHONY: build test race bench bench-smoke vet ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race runs the full test suite under the race detector. The experiment
# harness fans simulations out across goroutines (internal/simrunner), and
# most tests run with t.Parallel(), so this exercises the concurrent paths
# for real. Expect it to take several times longer than `make test`.
race:
	$(GO) test -race ./...

# bench runs the training/kernel benchmarks at full fidelity and records
# the results as JSON in BENCH_train.json (see cmd/benchjson). The raw
# benchmark stream still prints to the terminal.
bench:
	$(GO) test -run XXX -bench . -benchmem ./internal/ml/ ./internal/offline/ | $(GO) run ./cmd/benchjson -o BENCH_train.json

# bench-smoke compiles and runs every benchmark exactly once — a fast CI
# check that the benchmarks themselves still work, with no timing claims.
bench-smoke:
	$(GO) test -run XXX -bench . -benchtime 1x ./...

ci: vet build test race
