// Package ledger is a tamper-evident, content-addressed store for
// experiment results. Every artifact is serialized to canonical JSON
// (bytewise-sorted object keys, fixed number formatting, minimal string
// escaping), content-addressed by the SHA-256 of those bytes, and anchored
// into an append-only Merkle chain: artifacts accumulate into batches, each
// batch's leaves form an RFC 6962-shaped Merkle tree, and every batch root
// is chained to the previous one, so a single published chain root commits
// to every result ever recorded. Backends are pluggable (in-memory, and a
// single-file append-only disk log with crash-safe length-prefixed
// records); cmd/audit replays a ledger, verifies every inclusion proof
// against independently recomputed roots, and re-simulates historical
// artifacts to prove them bit-identical.
package ledger

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// CanonicalJSON marshals v with encoding/json and rewrites the result into
// canonical form. Two Go values that marshal to semantically equal JSON
// yield byte-identical canonical encodings, on any machine — the property
// that makes SHA-256 over these bytes a content address.
func CanonicalJSON(v any) ([]byte, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return Canonicalize(raw)
}

// Canonicalize rewrites one JSON value into canonical form:
//
//   - object keys sorted bytewise, duplicate keys collapsed to the last;
//   - no insignificant whitespace;
//   - strings minimally escaped (only `"`, `\`, and control characters;
//     everything else is raw UTF-8);
//   - integer literals (no '.', 'e', or 'E') kept verbatim; every other
//     number reformatted as the shortest float64 round-trip form
//     (strconv 'g', precision -1).
//
// Canonicalize is idempotent: Canonicalize(Canonicalize(x)) ==
// Canonicalize(x), and decode→encode over canonical bytes is a fixpoint —
// the properties the test wall pins.
func Canonicalize(raw []byte) ([]byte, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return nil, fmt.Errorf("ledger: canonicalize: %w", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return nil, errors.New("ledger: canonicalize: trailing data after JSON value")
	}
	var buf bytes.Buffer
	if err := writeCanonical(&buf, v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func writeCanonical(buf *bytes.Buffer, v any) error {
	switch x := v.(type) {
	case nil:
		buf.WriteString("null")
	case bool:
		if x {
			buf.WriteString("true")
		} else {
			buf.WriteString("false")
		}
	case string:
		writeCanonicalString(buf, x)
	case json.Number:
		return writeCanonicalNumber(buf, string(x))
	case []any:
		buf.WriteByte('[')
		for i, e := range x {
			if i > 0 {
				buf.WriteByte(',')
			}
			if err := writeCanonical(buf, e); err != nil {
				return err
			}
		}
		buf.WriteByte(']')
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		buf.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				buf.WriteByte(',')
			}
			writeCanonicalString(buf, k)
			buf.WriteByte(':')
			if err := writeCanonical(buf, x[k]); err != nil {
				return err
			}
		}
		buf.WriteByte('}')
	default:
		return fmt.Errorf("ledger: canonicalize: unexpected value type %T", v)
	}
	return nil
}

// writeCanonicalString escapes only what JSON requires: the quote, the
// backslash, and control characters (common ones named, the rest \u00XX).
// All other bytes — including multi-byte UTF-8 — pass through verbatim, so
// the encoding is unique and decode→encode is a fixpoint.
func writeCanonicalString(buf *bytes.Buffer, s string) {
	const hex = "0123456789abcdef"
	buf.WriteByte('"')
	for i := 0; i < len(s); i++ {
		b := s[i]
		switch {
		case b == '"':
			buf.WriteString(`\"`)
		case b == '\\':
			buf.WriteString(`\\`)
		case b >= 0x20:
			buf.WriteByte(b)
		case b == '\b':
			buf.WriteString(`\b`)
		case b == '\f':
			buf.WriteString(`\f`)
		case b == '\n':
			buf.WriteString(`\n`)
		case b == '\r':
			buf.WriteString(`\r`)
		case b == '\t':
			buf.WriteString(`\t`)
		default:
			buf.WriteString(`\u00`)
			buf.WriteByte(hex[b>>4])
			buf.WriteByte(hex[b&0xf])
		}
	}
	buf.WriteByte('"')
}

// writeCanonicalNumber emits the canonical form of one JSON number literal.
// Integer literals are kept verbatim: they may carry more precision than a
// float64 (uint64 block addresses, for one), and Go's encoder already
// produces them canonically. Everything else round-trips through float64
// and is reformatted with the shortest representation, which is itself a
// formatting fixpoint.
func writeCanonicalNumber(buf *bytes.Buffer, lit string) error {
	if !strings.ContainsAny(lit, ".eE") {
		buf.WriteString(lit)
		return nil
	}
	f, err := strconv.ParseFloat(lit, 64)
	if err != nil {
		return fmt.Errorf("ledger: canonicalize: number %q: %w", lit, err)
	}
	buf.WriteString(strconv.FormatFloat(f, 'g', -1, 64))
	return nil
}
