package experiments

import (
	"fmt"
	"io"

	gl "glider/internal/glider"
	"glider/internal/ml"
	"glider/internal/offline"
	"glider/internal/workload"
)

// --------------------------------------------------------------- Figure 14

// Fig14 is the history-length sweep.
type Fig14 struct {
	Benchmark string
	Sweep     offline.HistoryLengthSweep
}

// RunFig14 sweeps sequence length for the LSTM and history length / k for
// the linear models on the omnetpp-class benchmark.
func RunFig14(cfg Config, lstmLens, linearKs []int) (Fig14, error) {
	spec, err := workload.Lookup("omnetpp")
	if err != nil {
		return Fig14{}, err
	}
	d, err := offline.BuildDataset(spec, cfg.OfflineAccesses, cfg.Seed)
	if err != nil {
		return Fig14{}, err
	}
	sweep, err := offline.SweepHistoryLength(d, lstmLens, linearKs, cfg.LSTM, cfg.LinearEpochs)
	if err != nil {
		return Fig14{}, err
	}
	return Fig14{Benchmark: spec.Name, Sweep: sweep}, nil
}

// DefaultFig14Lens returns the paper's sweep points: LSTM sequence lengths
// 10–100, linear history lengths 1–10.
func DefaultFig14Lens() (lstm []int, linear []int) {
	for n := 10; n <= 100; n += 10 {
		lstm = append(lstm, n)
	}
	for k := 1; k <= 10; k++ {
		linear = append(linear, k)
	}
	return lstm, linear
}

// Render writes the sweep.
func (f Fig14) Render(w io.Writer) {
	fmt.Fprintf(w, "Figure 14: accuracy vs history length (%s)\n", f.Benchmark)
	fmt.Fprintf(w, "  %-28s", "attention-LSTM (seq len N)")
	for i, n := range f.Sweep.LSTMLens {
		fmt.Fprintf(w, "  %d:%4.1f%%", n, f.Sweep.LSTMAcc[i]*100)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  %-28s", "offline ISVM (unique PCs k)")
	for i, k := range f.Sweep.ISVMKs {
		fmt.Fprintf(w, "  %d:%4.1f%%", k, f.Sweep.ISVMAcc[i]*100)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  %-28s", "perceptron (ordered len h)")
	for i, h := range f.Sweep.Perceptron {
		fmt.Fprintf(w, "  %d:%4.1f%%", h, f.Sweep.PercAcc[i]*100)
	}
	fmt.Fprintln(w)
}

// --------------------------------------------------------------- Figure 15

// Fig15 is the convergence study: test accuracy per training epoch.
type Fig15 struct {
	Benchmark string
	Epochs    int
	Hawkeye   []float64
	Percep    []float64
	ISVM      []float64
	LSTM      []float64
}

// RunFig15 trains all four models for the configured number of epochs,
// recording per-epoch accuracy.
func RunFig15(cfg Config) (Fig15, error) {
	spec, err := workload.Lookup("omnetpp")
	if err != nil {
		return Fig15{}, err
	}
	d, err := offline.BuildDataset(spec, cfg.OfflineAccesses, cfg.Seed)
	if err != nil {
		return Fig15{}, err
	}
	epochs := cfg.ConvergenceEpochs
	_, hk := offline.TrainHawkeyeOffline(d, epochs)
	_, perc := offline.TrainOrderedSVMOffline(d, 3, epochs)
	_, isvm := offline.TrainISVMOffline(d, 5, epochs)
	lstmOpts := cfg.LSTM
	lstmOpts.Epochs = epochs
	_, lstm, err := offline.TrainLSTM(d, lstmOpts)
	if err != nil {
		return Fig15{}, err
	}
	return Fig15{
		Benchmark: spec.Name,
		Epochs:    epochs,
		Hawkeye:   hk.EpochAccuracy,
		Percep:    perc.EpochAccuracy,
		ISVM:      isvm.EpochAccuracy,
		LSTM:      lstm.EpochAccuracy,
	}, nil
}

// Render writes the convergence curves.
func (f Fig15) Render(w io.Writer) {
	fmt.Fprintf(w, "Figure 15: convergence of different models (%s)\n", f.Benchmark)
	fmt.Fprintf(w, "  %-8s %9s %11s %13s %15s\n", "epoch", "hawkeye", "perceptron", "offline-ISVM", "attention-LSTM")
	for e := 0; e < f.Epochs; e++ {
		fmt.Fprintf(w, "  %-8d %8.1f%% %10.1f%% %12.1f%% %14.1f%%\n",
			e+1, f.Hawkeye[e]*100, f.Percep[e]*100, f.ISVM[e]*100, f.LSTM[e]*100)
	}
}

// ---------------------------------------------------------------- Table 3

// Table3Row is one model's size and per-sample cost.
type Table3Row struct {
	Model      string
	SizeKB     float64
	TrainOps   int
	PredictOps int
	Float      bool
}

// Table3 is the model size / computation comparison.
type Table3 struct {
	Rows []Table3Row
}

// RunTable3 computes analytic costs for the configured models.
func RunTable3(cfg Config) (Table3, error) {
	spec, err := workload.Lookup("omnetpp")
	if err != nil {
		return Table3{}, err
	}
	d, err := offline.BuildDataset(spec, cfg.OfflineAccesses/4, cfg.Seed)
	if err != nil {
		return Table3{}, err
	}
	// LSTM: parameters × 4 bytes; per-sample ops dominated by the four
	// gate matmuls: train ≈ 3 × forward (forward + backward + update).
	lcfg := ml.PaperConfig(len(d.Vocab))
	m, err := ml.NewAttentionLSTM(lcfg)
	if err != nil {
		return Table3{}, err
	}
	weights := m.NumWeights()
	fwdOps := 4 * lcfg.Hidden * (lcfg.Embed + lcfg.Hidden)

	// Glider: the hardware predictor of §4.4.
	pred := gl.NewPredictor(gl.DefaultConfig(1))
	cost := pred.Cost()

	rows := []Table3Row{
		{Model: "LSTM (predictor only)", SizeKB: float64(weights) * 4 / 1024, TrainOps: 3 * fwdOps, PredictOps: fwdOps, Float: true},
		{Model: "Glider", SizeKB: float64(cost.SizeBytes) / 1024, TrainOps: cost.TrainOpsPerSample, PredictOps: cost.PredictOpsPerSample},
		{Model: "Perceptron", SizeKB: 29, TrainOps: 9, PredictOps: 9},
		{Model: "Hawkeye", SizeKB: 32, TrainOps: 1, PredictOps: 1},
	}
	return Table3{Rows: rows}, nil
}

// Render writes the table.
func (t Table3) Render(w io.Writer) {
	fmt.Fprintln(w, "Table 3: model size and computation cost per sample")
	fmt.Fprintf(w, "  %-24s %12s %12s %12s %8s\n", "model", "size (KB)", "train ops", "test ops", "arith")
	for _, r := range t.Rows {
		arith := "int"
		if r.Float {
			arith = "float"
		}
		fmt.Fprintf(w, "  %-24s %12.1f %12d %12d %8s\n", r.Model, r.SizeKB, r.TrainOps, r.PredictOps, arith)
	}
}

// ---------------------------------------------------------------- Table 4

// Table4 is the anchor-PC study on the omnetpp-class context pattern.
type Table4 struct {
	Rows []offline.AnchorResult
	// CallerPCs are the ground-truth caller marker PCs of the workload's
	// context component (the candidates for anchors).
	CallerPCs []uint64
}

// RunTable4 trains the LSTM and Hawkeye counters on omnetpp and measures
// per-target-PC accuracy plus anchor attribution.
func RunTable4(cfg Config) (Table4, error) {
	spec, err := workload.Lookup("omnetpp")
	if err != nil {
		return Table4{}, err
	}
	d, err := offline.BuildDataset(spec, cfg.OfflineAccesses, cfg.Seed)
	if err != nil {
		return Table4{}, err
	}
	// omnetpp's context component is component 0: caller PCs 0x400000..2,
	// target PCs 0x400003..6 (see the workload registry).
	targets := []uint64{0x400003, 0x400004, 0x400005, 0x400006}
	callers := []uint64{0x400000, 0x400001, 0x400002}

	opts := cfg.LSTM
	if opts.Config.Vocab == 0 {
		opts.Config = ml.FastConfig(len(d.Vocab))
	}
	opts.Config.Scale = 3
	m, _, err := offline.TrainLSTM(d, opts)
	if err != nil {
		return Table4{}, err
	}
	hk, _ := offline.TrainHawkeyeOffline(d, cfg.LinearEpochs)
	rows := offline.AnchorStudy(d, m, hk, targets, opts.HistoryLen, 4*opts.MaxEvalSequences)
	return Table4{Rows: rows, CallerPCs: callers}, nil
}

// Render writes the table.
func (t Table4) Render(w io.Writer) {
	fmt.Fprintln(w, "Table 4: per-target-PC accuracy and anchor PCs (omnetpp context pattern)")
	fmt.Fprintf(w, "  %-10s %-10s %10s %16s %8s\n", "target PC", "anchor PC", "hawkeye", "attention-LSTM", "samples")
	for _, r := range t.Rows {
		fmt.Fprintf(w, "  %-10x %-10x %9.1f%% %15.1f%% %8d\n",
			r.TargetPC, r.AnchorPC, r.HawkeyeAccuracy*100, r.LSTMAccuracy*100, r.Samples)
	}
	fmt.Fprintf(w, "  caller marker PCs (ground-truth anchors): %x\n", t.CallerPCs)
}
