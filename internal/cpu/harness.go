package cpu

import (
	"context"
	"fmt"

	"glider/internal/cache"
	"glider/internal/dram"
	"glider/internal/obs"
	"glider/internal/policy"
	"glider/internal/trace"
	"glider/internal/workload"
)

// BuildHierarchy constructs the Table 1 hierarchy with the named LLC
// replacement policy (upper levels always use LRU). For cores > 1 the LLC
// is the shared 8 MB configuration.
func BuildHierarchy(cores int, policyName string) (*cache.Hierarchy, error) {
	return BuildHierarchyObs(cores, policyName, ObsOptions{})
}

// ObsOptions selects what telemetry an instrumented hierarchy publishes.
// The zero value disables everything, which is exactly BuildHierarchy.
type ObsOptions struct {
	// Registry receives LLC and policy metrics when non-nil.
	Registry *obs.Registry
	// Sink receives per-event telemetry (sampled evictions, end-of-run
	// policy snapshots) when non-nil.
	Sink obs.Sink
	// PerPC enables the LLC observer's per-PC reuse outcome table.
	PerPC bool
	// SampleEvery emits every Nth LLC eviction to Sink (0 = none).
	SampleEvery uint64
}

// BuildHierarchyObs is BuildHierarchy plus observability: it attaches an
// LLC observer and, for policies that implement obs.Attacher (Hawkeye,
// Glider), their predictor telemetry. With a zero ObsOptions the hierarchy
// is indistinguishable from an uninstrumented one.
func BuildHierarchyObs(cores int, policyName string, oo ObsOptions) (*cache.Hierarchy, error) {
	llcCfg := cache.LLCConfig
	if cores > 1 {
		llcCfg = cache.SharedLLCConfig4
	}
	p, ok := policy.New(policyName, llcCfg.Sets, llcCfg.Ways)
	if !ok {
		return nil, fmt.Errorf("cpu: unknown policy %q", policyName)
	}
	if a, ok := p.(obs.Attacher); ok && (oo.Registry != nil || oo.Sink != nil) {
		a.AttachObs(oo.Registry, oo.Sink)
	}
	// nil upper factory selects the specialized fast LRU path for L1/L2 —
	// bit-identical to policy.NewLRU (see cache/fastlru.go and the
	// equivalence suite in equivalence_test.go) without per-access policy
	// dispatch.
	h, err := cache.NewHierarchy(cores, llcCfg, p, nil)
	if err != nil {
		return nil, err
	}
	if o := cache.NewObserver(oo.Registry, oo.Sink, llcCfg, cache.ObserverOptions{PerPC: oo.PerPC, SampleEvery: oo.SampleEvery}); o != nil {
		h.LLC().AttachObserver(o)
	}
	return h, nil
}

// FlushHierarchyObs emits end-of-run telemetry for policies that buffer it
// (e.g. Glider's ISVM weight snapshot). Call once after the run completes.
func FlushHierarchyObs(h *cache.Hierarchy) {
	if f, ok := h.LLC().Policy().(obs.Flusher); ok {
		f.FlushObs()
	}
}

// SingleCore runs one benchmark with one policy and full timing, warming up
// on the first fifth of the trace (mirroring the paper's 200M-of-1B warmup).
// Cancelling ctx aborts the simulation promptly (see Run).
func SingleCore(ctx context.Context, spec workload.Spec, policyName string, accesses int, seed int64) (Result, error) {
	t, err := workload.SharedE(spec, accesses, seed)
	if err != nil {
		return Result{}, err
	}
	h, err := BuildHierarchy(1, policyName)
	if err != nil {
		return Result{}, err
	}
	d := dram.New(dram.SingleCoreConfig())
	return Run(ctx, t, h, d, DefaultCoreConfig(), accesses/5)
}

// SingleCoreMissRate runs one benchmark functionally and returns the LLC
// miss rate (Figure 11's underlying metric).
func SingleCoreMissRate(ctx context.Context, spec workload.Spec, policyName string, accesses int, seed int64) (float64, error) {
	t, err := workload.SharedE(spec, accesses, seed)
	if err != nil {
		return 0, err
	}
	h, err := BuildHierarchy(1, policyName)
	if err != nil {
		return 0, err
	}
	res, err := RunFunctional(ctx, t, h, accesses/5, false)
	if err != nil {
		return 0, err
	}
	return res.LLC.MissRate(), nil
}

// MultiCore runs a workload mix on a shared LLC with full timing and
// returns the per-core IPCs.
func MultiCore(ctx context.Context, mix workload.Mix, policyName string, accessesPerCore int, seed int64) (Result, error) {
	cores := len(mix.Members)
	perCore := make([]*trace.Trace, cores)
	for i, spec := range mix.Members {
		t, err := workload.SharedE(spec, accessesPerCore, seed+int64(i))
		if err != nil {
			return Result{}, err
		}
		perCore[i] = t
	}
	merged := trace.Interleave(fmt.Sprintf("mix%d", mix.ID), perCore...)
	h, err := BuildHierarchy(cores, policyName)
	if err != nil {
		return Result{}, err
	}
	d := dram.New(dram.QuadCoreConfig())
	return Run(ctx, merged, h, d, DefaultCoreConfig(), merged.Len()/5)
}

// SoloOnShared runs one benchmark alone on the multi-core configuration
// (shared LLC geometry and 12.8 GB/s DRAM): the IPCsingle baseline of §5.1,
// which is defined as "executing in isolation on the same cache".
func SoloOnShared(ctx context.Context, spec workload.Spec, cores int, policyName string, accesses int, seed int64) (Result, error) {
	t, err := workload.SharedE(spec, accesses, seed)
	if err != nil {
		return Result{}, err
	}
	h, err := BuildHierarchy(cores, policyName)
	if err != nil {
		return Result{}, err
	}
	d := dram.New(dram.QuadCoreConfig())
	return Run(ctx, t, h, d, DefaultCoreConfig(), accesses/5)
}

// WeightedSpeedup computes the §5.1 weighted-IPC metric for a mix under one
// policy: Σ_i IPCshared_i / IPCsingle_i, where IPCsingle_i is benchmark i
// running alone on the same shared cache with the same policy.
func WeightedSpeedup(ctx context.Context, mix workload.Mix, policyName string, accessesPerCore int, seed int64) (float64, error) {
	shared, err := MultiCore(ctx, mix, policyName, accessesPerCore, seed)
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for i, spec := range mix.Members {
		solo, err := SoloOnShared(ctx, spec, len(mix.Members), policyName, accessesPerCore, seed+int64(i))
		if err != nil {
			return 0, err
		}
		if solo.IPC <= 0 {
			return 0, fmt.Errorf("cpu: zero single-core IPC for %s", spec.Name)
		}
		sum += shared.PerCoreIPC[i] / solo.IPC
	}
	return sum, nil
}
