package experiments

import (
	"reflect"
	"testing"

	"glider/internal/simrunner"
)

// The parallel runner's core contract: worker count must never change an
// experiment's result. RunTable2 (pure trace statistics) and RunFig9 (full
// model training, including LSTM) are compared struct-for-struct between a
// serial and a heavily oversubscribed run.

func TestRunTable2ParallelMatchesSerial(t *testing.T) {
	t.Parallel()
	serial := Quick()
	serial.Workers = 1
	parallel := Quick()
	parallel.Workers = 8

	a, err := RunTable2(serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTable2(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("workers=8 changed Table 2:\nserial:   %+v\nparallel: %+v", a, b)
	}
}

func TestRunFig9ParallelMatchesSerial(t *testing.T) {
	t.Parallel()
	serial := Quick()
	serial.Workers = 1
	parallel := Quick()
	parallel.Workers = 8

	a, err := RunFig9(serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFig9(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("workers=8 changed Figure 9:\nserial:   %+v\nparallel: %+v", a, b)
	}
}

// Progress callbacks must fire once per job with a monotonically increasing
// Done count, and attaching one must not perturb the result.
func TestProgressCallbackOnExperiment(t *testing.T) {
	t.Parallel()
	base := Quick()
	base.Workers = 4
	want, err := RunTable2(base)
	if err != nil {
		t.Fatal(err)
	}

	cfg := Quick()
	cfg.Workers = 4
	var events []simrunner.Progress
	cfg.Progress = func(p simrunner.Progress) { events = append(events, p) }
	got, err := RunTable2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("progress callback changed the result")
	}
	if len(events) != len(want.Rows) {
		t.Fatalf("%d progress events for %d jobs", len(events), len(want.Rows))
	}
	for i, e := range events {
		if e.Done != i+1 || e.Total != len(want.Rows) || e.Err != nil {
			t.Fatalf("event %d: %+v", i, e)
		}
	}
}
