package workload

import (
	"math/rand"

	"glider/internal/trace"
)

// An emitter produces one access at a time for a single access-pattern class.
// Emitters are composed by the workload scheduler to form full benchmarks.
type emitter interface {
	next(r *rand.Rand) trace.Access
}

// blockAddr converts a block index within an emitter's private address region
// into a byte address.
func blockAddr(base, block uint64) uint64 {
	return (base + block) << trace.BlockShift
}

// streamEmitter models a sequential sweep over an array much larger than the
// LLC (e.g. lbm, libquantum, bwaves inner loops). Every access is a
// compulsory-or-capacity miss under any policy: the optimal decision for
// these lines is cache-averse, and the behaviour is perfectly predictable
// from the PC alone.
type streamEmitter struct {
	pcBase   uint64
	addrBase uint64
	blocks   uint64 // region size in blocks; the cursor wraps
	stride   uint64 // in blocks
	pcCount  uint64 // distinct PCs rotating over the stream
	cursor   uint64
	issued   uint64
}

func newStreamEmitter(pcBase, addrBase, blocks, stride, pcCount uint64) *streamEmitter {
	if stride == 0 {
		stride = 1
	}
	if pcCount == 0 {
		pcCount = 1
	}
	return &streamEmitter{pcBase: pcBase, addrBase: addrBase, blocks: blocks, stride: stride, pcCount: pcCount}
}

// streamRunLen is how many consecutive accesses keep the same PC: real
// streaming loops issue long runs from one load instruction, which is what
// starves short *ordered* PC histories of context (§2.1).
const streamRunLen = 192

func (e *streamEmitter) next(r *rand.Rand) trace.Access {
	a := trace.Access{
		PC:   e.pcBase + (e.issued/streamRunLen)%e.pcCount,
		Addr: blockAddr(e.addrBase, e.cursor),
		Kind: trace.Load,
	}
	e.cursor = (e.cursor + e.stride) % e.blocks
	e.issued++
	return a
}

// hotLoopEmitter models a small working set reused continuously (hot data
// structures, lookup tables). The set fits in the LLC, so the optimal
// decision is cache-friendly and PC-predictable.
type hotLoopEmitter struct {
	pcBase   uint64
	addrBase uint64
	blocks   uint64
	pcCount  uint64
	cursor   uint64
	issued   uint64
}

func newHotLoopEmitter(pcBase, addrBase, blocks, pcCount uint64) *hotLoopEmitter {
	if pcCount == 0 {
		pcCount = 1
	}
	return &hotLoopEmitter{pcBase: pcBase, addrBase: addrBase, blocks: blocks, pcCount: pcCount}
}

func (e *hotLoopEmitter) next(r *rand.Rand) trace.Access {
	a := trace.Access{
		PC:   e.pcBase + (e.issued/streamRunLen)%e.pcCount,
		Addr: blockAddr(e.addrBase, e.cursor),
		Kind: trace.Load,
	}
	e.cursor = (e.cursor + 1) % e.blocks
	e.issued++
	return a
}

// thrashEmitter models a cyclic scan over a region slightly larger than the
// cache share available to it. LRU misses on every access; the optimal
// policy pins a subset of the region and hits on it. Because the retained
// subset is address-determined, per-PC predictors see mixed behaviour unless
// PCs partition the region, which this emitter arranges: each PC covers a
// contiguous sub-range, so PC identity carries partial information.
type thrashEmitter struct {
	pcBase   uint64
	addrBase uint64
	blocks   uint64
	pcCount  uint64
	cursor   uint64
}

func newThrashEmitter(pcBase, addrBase, blocks, pcCount uint64) *thrashEmitter {
	if pcCount == 0 {
		pcCount = 1
	}
	return &thrashEmitter{pcBase: pcBase, addrBase: addrBase, blocks: blocks, pcCount: pcCount}
}

func (e *thrashEmitter) next(r *rand.Rand) trace.Access {
	// PC is a function of the region chunk so that address subsets are
	// visible to PC-indexed predictors.
	chunk := e.cursor * e.pcCount / e.blocks
	a := trace.Access{
		PC:   e.pcBase + chunk,
		Addr: blockAddr(e.addrBase, e.cursor),
		Kind: trace.Load,
	}
	e.cursor = (e.cursor + 1) % e.blocks
	return a
}

// contextCallEmitter is the central pattern for the paper's insight: a set
// of shared target PCs (a callee such as omnetpp's scheduleAt) whose caching
// behaviour depends on the calling context, not on the target PC itself.
//
// Each caller has its own caller PC and passes the callee an object drawn
// from a caller-specific pool: "friendly" callers use a small pool that is
// re-referenced quickly (optimal decision: cache), while "averse" callers
// draw from a huge pool that is effectively never reused (optimal decision:
// bypass). Between the caller marker PC and the callee body the emitter
// issues a configurable number of noise accesses, so ordered short-history
// predictors lose the context while unordered longer histories (Glider's
// PCHR, the LSTM's attention) retain it.
type contextCallEmitter struct {
	callerPCs  []uint64 // one marker PC per caller
	friendly   []bool   // whether caller i's objects are cache-friendly
	targetPCs  []uint64 // shared callee body PCs
	noisePCs   []uint64 // filler PCs between caller and callee
	noiseAddr  uint64   // base of noise address region
	noiseSpan  uint64   // blocks of (streaming, averse) noise data
	hotBase    uint64   // base of the friendly object pool
	hotBlocks  uint64
	coldBase   uint64 // base of the averse object pool
	coldBlocks uint64
	noiseLen   int // noise accesses between caller marker and callee body
	markerSpan uint64

	// queue holds the remainder of the current call sequence.
	queue      []trace.Access
	noiseCur   uint64
	markerCur  uint64
	hotCursor  uint64
	coldCursor uint64
}

type contextCallConfig struct {
	pcBase     uint64
	addrBase   uint64
	callers    int
	friendlyN  int // how many of the callers are cache-friendly
	targets    int
	noiseLen   int
	hotBlocks  uint64
	coldBlocks uint64
}

func newContextCallEmitter(cfg contextCallConfig) *contextCallEmitter {
	if cfg.noiseLen < 1 {
		cfg.noiseLen = 1
	}
	e := &contextCallEmitter{
		noiseAddr:  cfg.addrBase,
		noiseSpan:  1 << 16,
		hotBase:    cfg.addrBase + 1<<20,
		hotBlocks:  cfg.hotBlocks,
		coldBase:   cfg.addrBase + 2<<20,
		coldBlocks: cfg.coldBlocks,
		noiseLen:   cfg.noiseLen,
		markerSpan: 1 << 15,
	}
	pc := cfg.pcBase
	for i := 0; i < cfg.callers; i++ {
		e.callerPCs = append(e.callerPCs, pc)
		pc++
		e.friendly = append(e.friendly, i < cfg.friendlyN)
	}
	for i := 0; i < cfg.targets; i++ {
		e.targetPCs = append(e.targetPCs, pc)
		pc++
	}
	for i := 0; i < 8; i++ {
		e.noisePCs = append(e.noisePCs, pc)
		pc++
	}
	return e
}

// CallerPCs exposes the caller marker PCs (used by the Table 4 experiment to
// identify the anchor PC).
func (e *contextCallEmitter) CallerPCs() []uint64 { return e.callerPCs }

// TargetPCs exposes the shared callee PCs.
func (e *contextCallEmitter) TargetPCs() []uint64 { return e.targetPCs }

func (e *contextCallEmitter) refill(r *rand.Rand) {
	caller := r.Intn(len(e.callerPCs))
	var obj uint64
	if e.friendly[caller] {
		obj = e.hotBase + e.hotCursor%e.hotBlocks
		e.hotCursor++
	} else {
		obj = e.coldBase + e.coldCursor%e.coldBlocks
		// Advance by a large co-prime step so consecutive cold objects are
		// far apart and effectively never reused.
		e.coldCursor += 97
	}
	// Caller marker access: each caller walks its own streaming region so
	// the marker access itself reaches the LLC (a fixed hot line would be
	// absorbed by the L1/L2 and the calling context would be invisible to
	// LLC-level predictors). Marker lines are consistently cache-averse.
	e.markerCur++
	e.queue = append(e.queue, trace.Access{
		PC:   e.callerPCs[caller],
		Addr: blockAddr(e.hotBase+e.hotBlocks+uint64(caller+1)*e.markerSpan, e.markerCur%e.markerSpan),
		Kind: trace.Load,
	})
	// Noise: streaming accesses between the caller and the callee body.
	// One noise PC per call, repeated a varying number of times
	// (1..noiseLen): the caller marker then lands at a varying *position*
	// in an ordered history — fragmenting position-sensitive
	// representations — while remaining a single entry of the unordered
	// unique-PC history regardless of the repetition count.
	noise := 1 + r.Intn(e.noiseLen)
	noisePC := e.noisePCs[int(e.noiseCur/7)%len(e.noisePCs)]
	for i := 0; i < noise; i++ {
		e.queue = append(e.queue, trace.Access{
			PC:   noisePC,
			Addr: blockAddr(e.noiseAddr, e.noiseCur%e.noiseSpan),
			Kind: trace.Load,
		})
		e.noiseCur++
	}
	// Callee body: each target PC touches a block of the caller's object.
	for i, tpc := range e.targetPCs {
		e.queue = append(e.queue, trace.Access{
			PC:   tpc,
			Addr: blockAddr(obj*8, uint64(i)),
			Kind: trace.Load,
		})
	}
}

func (e *contextCallEmitter) next(r *rand.Rand) trace.Access {
	if len(e.queue) == 0 {
		e.refill(r)
	}
	a := e.queue[0]
	e.queue = e.queue[1:]
	return a
}

// gatherEmitter models graph-style gathers: addresses drawn from a Zipf-like
// popularity distribution over a large vertex array. Popular (hub) vertices
// are re-referenced quickly and are worth caching; tail vertices are not.
// A "frontier" PC issues sequential scans (averse) interleaved with the
// gathers, mimicking CSR traversal.
type gatherEmitter struct {
	pcGather   uint64
	pcFrontier uint64
	addrBase   uint64
	hubBlocks  uint64 // popular region
	tailBlocks uint64
	hubProb    float64 // probability a gather hits the hub region
	frontierN  int     // frontier accesses per gather burst
	burstLen   int
	state      int
	frontier   uint64
	span       uint64
}

func newGatherEmitter(pcBase, addrBase, hubBlocks, tailBlocks uint64, hubProb float64, frontierN, burstLen int) *gatherEmitter {
	return &gatherEmitter{
		pcGather:   pcBase,
		pcFrontier: pcBase + 1,
		addrBase:   addrBase,
		hubBlocks:  hubBlocks,
		tailBlocks: tailBlocks,
		hubProb:    hubProb,
		frontierN:  frontierN,
		burstLen:   burstLen,
		span:       1 << 18,
	}
}

func (e *gatherEmitter) next(r *rand.Rand) trace.Access {
	cycle := e.frontierN + e.burstLen
	pos := e.state % cycle
	e.state++
	if pos < e.frontierN {
		// Sequential frontier scan: cache-averse.
		a := trace.Access{
			PC:   e.pcFrontier,
			Addr: blockAddr(e.addrBase, e.frontier%e.span),
			Kind: trace.Load,
		}
		e.frontier++
		return a
	}
	// Gather: hub with probability hubProb, else uniform tail.
	var block uint64
	if r.Float64() < e.hubProb {
		block = uint64(r.Int63n(int64(e.hubBlocks)))
	} else {
		block = e.hubBlocks + uint64(r.Int63n(int64(e.tailBlocks)))
	}
	return trace.Access{
		PC:   e.pcGather,
		Addr: blockAddr(e.addrBase+e.span, block),
		Kind: trace.Load,
	}
}

// stencilEmitter models a structured-grid sweep (cactusADM, zeusmp, roms):
// each step touches the current row plus the row one plane back, giving a
// medium, regular reuse distance. Whether the reused plane fits in the LLC
// determines friendliness; the emitter's planeBlocks parameter controls it.
type stencilEmitter struct {
	pcBase      uint64
	addrBase    uint64
	planeBlocks uint64
	planes      uint64
	cursor      uint64
	writeEvery  int
	issued      int
}

func newStencilEmitter(pcBase, addrBase, planeBlocks, planes uint64, writeEvery int) *stencilEmitter {
	if planes < 2 {
		planes = 2
	}
	return &stencilEmitter{pcBase: pcBase, addrBase: addrBase, planeBlocks: planeBlocks, planes: planes, writeEvery: writeEvery}
}

func (e *stencilEmitter) next(r *rand.Rand) trace.Access {
	plane := (e.cursor / e.planeBlocks) % e.planes
	off := e.cursor % e.planeBlocks
	var a trace.Access
	if e.issued%2 == 0 {
		// Leading access to the current plane.
		a = trace.Access{PC: e.pcBase, Addr: blockAddr(e.addrBase, plane*e.planeBlocks+off), Kind: trace.Load}
		e.cursor++
	} else {
		// Trailing access to the previous plane (reuse).
		prev := (plane + e.planes - 1) % e.planes
		a = trace.Access{PC: e.pcBase + 1, Addr: blockAddr(e.addrBase, prev*e.planeBlocks+off), Kind: trace.Load}
	}
	if e.writeEvery > 0 && e.issued%e.writeEvery == e.writeEvery-1 {
		a.Kind = trace.Store
	}
	e.issued++
	return a
}

// chaseEmitter models dependent pointer chasing over a heap region (mcf,
// xalancbmk): a walk that allocates/visits fresh nodes (an "advance" PC)
// which are later re-traversed once, oldest first (a "revisit" PC) — the
// free-list / arena recycling structure of pointer-chasing codes. Most
// advanced nodes are revisited at a reuse distance governed by the pool
// size, so the advance PC is consistently cache-friendly when the pool
// exceeds L2 but fits the LLC; revisited nodes die immediately, so the
// revisit PC is cache-averse.
type chaseEmitter struct {
	pcAdvance   uint64
	pcRevisit   uint64
	addrBase    uint64
	heapBlocks  uint64
	pool        []uint64 // FIFO of advanced, not-yet-revisited blocks
	poolCap     int
	revisitProb float64
	pos         uint64
}

func newChaseEmitter(pcBase, addrBase, heapBlocks uint64, poolCap int, revisitProb float64) *chaseEmitter {
	return &chaseEmitter{
		pcAdvance:   pcBase,
		pcRevisit:   pcBase + 1,
		addrBase:    addrBase,
		heapBlocks:  heapBlocks,
		poolCap:     poolCap,
		revisitProb: revisitProb,
	}
}

func (e *chaseEmitter) next(r *rand.Rand) trace.Access {
	if len(e.pool) > 0 && r.Float64() < e.revisitProb {
		// Revisit the oldest outstanding node exactly once.
		block := e.pool[0]
		e.pool = e.pool[1:]
		return trace.Access{PC: e.pcRevisit, Addr: blockAddr(e.addrBase, block), Kind: trace.Load}
	}
	// Advance the walk with a large pseudo-random stride (LCG step) so the
	// footprint far exceeds the LLC.
	e.pos = (e.pos*6364136223846793005 + 1442695040888963407) % e.heapBlocks
	block := e.pos
	e.pool = append(e.pool, block)
	if len(e.pool) > e.poolCap {
		// Overflowing nodes are abandoned un-revisited.
		e.pool = e.pool[1:]
	}
	return trace.Access{PC: e.pcAdvance, Addr: blockAddr(e.addrBase, block), Kind: trace.Load}
}
