package policy

import (
	"glider/internal/cache"
	"glider/internal/trace"
)

// SDBP — Sampling Dead Block Prediction (Khan, Tian & Jiménez, MICRO 2010)
// — a direct ancestor of the learning-based policies the paper compares
// against (§2: "SDBP and SHiP monitor evictions from a sampler to learn
// whether a given load instruction is likely to insert cache-friendly
// lines").
//
// A small set-sampled tag store (the "sampler") simulates LRU behaviour on
// a handful of sets; three skewed prediction tables of saturating counters
// learn, per PC, whether a block's last toucher predicts death. Lines
// predicted dead are the preferred victims and bypass candidates.

const (
	sdbpTables        = 3
	sdbpTableSize     = 4096
	sdbpCtrMax        = 3 // 2-bit counters
	sdbpThreshold     = 8 // sum over tables predicting dead
	sdbpSamplerAssoc  = 12
	sdbpSamplerStride = 16 // sample every Nth set
)

// sdbpEntry is one sampler tag entry.
type sdbpEntry struct {
	valid bool
	tag   uint64
	pc    uint64
	lru   uint64
}

// SDBP is the sampling dead-block predictor policy.
type SDBP struct {
	ways    int
	tables  [sdbpTables][]uint8
	sampler map[int][]sdbpEntry
	clock   uint64
	// Per-line dead bit refreshed on every access.
	dead [][]bool
	lru  *LRU
}

// NewSDBP builds the policy.
func NewSDBP(sets, ways int) *SDBP {
	p := &SDBP{
		ways:    ways,
		sampler: make(map[int][]sdbpEntry),
		lru:     NewLRU(sets, ways),
	}
	for i := range p.tables {
		p.tables[i] = make([]uint8, sdbpTableSize)
	}
	p.dead = make([][]bool, sets)
	backing := make([]bool, sets*ways)
	for i := range p.dead {
		p.dead[i], backing = backing[:ways], backing[ways:]
	}
	return p
}

// Name implements cache.Policy.
func (p *SDBP) Name() string { return "sdbp" }

// index computes the i-th skewed table index for a PC.
func (p *SDBP) index(i int, pc uint64) int {
	return hashPC(pc*uint64(2*i+3)+uint64(i)*0x9e37, sdbpTableSize)
}

// predictDead sums the three tables and compares with the threshold.
func (p *SDBP) predictDead(pc uint64) bool {
	sum := 0
	for i := range p.tables {
		sum += int(p.tables[i][p.index(i, pc)])
	}
	return sum >= sdbpThreshold
}

// train moves the counters toward dead (true) or live (false).
func (p *SDBP) train(pc uint64, dead bool) {
	for i := range p.tables {
		idx := p.index(i, pc)
		c := p.tables[i][idx]
		if dead {
			if c < sdbpCtrMax {
				p.tables[i][idx] = c + 1
			}
		} else {
			if c > 0 {
				p.tables[i][idx] = c - 1
			}
		}
	}
}

// sample updates the sampler for a sampled set and generates training.
func (p *SDBP) sample(set int, pc, block uint64) {
	if set%sdbpSamplerStride != 0 {
		return
	}
	entries, ok := p.sampler[set]
	if !ok {
		entries = make([]sdbpEntry, sdbpSamplerAssoc)
		p.sampler[set] = entries
	}
	p.clock++
	// Hit?
	for i := range entries {
		if entries[i].valid && entries[i].tag == block {
			// The previous toucher's block was re-referenced: live.
			p.train(entries[i].pc, false)
			entries[i].pc = pc
			entries[i].lru = p.clock
			return
		}
	}
	// Miss: evict sampler LRU, training its last toucher as dead.
	victim := 0
	oldest := ^uint64(0)
	for i := range entries {
		if !entries[i].valid {
			victim = i
			oldest = 0
			break
		}
		if entries[i].lru < oldest {
			oldest = entries[i].lru
			victim = i
		}
	}
	if entries[victim].valid {
		p.train(entries[victim].pc, true)
	}
	entries[victim] = sdbpEntry{valid: true, tag: block, pc: pc, lru: p.clock}
}

// Victim implements cache.Policy: prefer lines whose last toucher predicts
// death; otherwise fall back to LRU.
func (p *SDBP) Victim(set int, pc, block uint64, core uint8, lines []cache.Line) int {
	for w := range lines {
		if p.dead[set][w] {
			return w
		}
	}
	// Bypass if the incoming line itself is predicted dead (the original
	// SDBP bypasses dead fills).
	if p.predictDead(pc) {
		return cache.Bypass
	}
	return p.lru.Victim(set, pc, block, core, lines)
}

// Update implements cache.Policy.
func (p *SDBP) Update(set, way int, pc, block uint64, core uint8, hit bool, kind trace.Kind) {
	if kind != trace.Writeback {
		p.sample(set, pc, block)
	}
	p.lru.Update(set, way, pc, block, core, hit, kind)
	if way < 0 {
		return
	}
	p.dead[set][way] = p.predictDead(pc)
}
