// Package repro's top-level benchmarks regenerate every table and figure of
// the paper at reduced (Quick) scale, so `go test -bench=.` reproduces the
// full evaluation pipeline end to end. Paper-scale runs use cmd/experiments.
package repro

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"testing"

	"glider/internal/cpu"
	"glider/internal/experiments"
	"glider/internal/workload"
)

// render discards output; benchmarks measure compute, not I/O.
type discardRenderer interface{ Render(w io.Writer) }

func renderQuiet(b *testing.B, r discardRenderer) {
	b.Helper()
	r.Render(io.Discard)
}

func BenchmarkTable1Hierarchy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		renderQuiet(b, experiments.RunTable1())
	}
}

func BenchmarkTable2Stats(b *testing.B) {
	cfg := experiments.Quick()
	for i := 0; i < b.N; i++ {
		t, err := experiments.RunTable2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		renderQuiet(b, t)
	}
}

func BenchmarkFig4AttentionCDF(b *testing.B) {
	cfg := experiments.Quick()
	for i := 0; i < b.N; i++ {
		f, err := experiments.RunFig4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		renderQuiet(b, f)
	}
}

func BenchmarkFig5AttentionHeatmap(b *testing.B) {
	cfg := experiments.Quick()
	for i := 0; i < b.N; i++ {
		f, err := experiments.RunFig5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		renderQuiet(b, f)
	}
}

func BenchmarkFig6Shuffle(b *testing.B) {
	cfg := experiments.Quick()
	for i := 0; i < b.N; i++ {
		f, err := experiments.RunFig6(cfg)
		if err != nil {
			b.Fatal(err)
		}
		renderQuiet(b, f)
	}
}

func BenchmarkFig9OfflineAccuracy(b *testing.B) {
	cfg := experiments.Quick()
	for i := 0; i < b.N; i++ {
		f, err := experiments.RunFig9(cfg)
		if err != nil {
			b.Fatal(err)
		}
		renderQuiet(b, f)
	}
}

func BenchmarkFig10OnlineAccuracy(b *testing.B) {
	cfg := experiments.Quick()
	for i := 0; i < b.N; i++ {
		f, err := experiments.RunFig10(cfg)
		if err != nil {
			b.Fatal(err)
		}
		renderQuiet(b, f)
	}
}

func BenchmarkFig11MissReduction(b *testing.B) {
	cfg := experiments.Quick()
	for i := 0; i < b.N; i++ {
		f, err := experiments.RunFig11(cfg)
		if err != nil {
			b.Fatal(err)
		}
		renderQuiet(b, f)
	}
}

// BenchmarkFig12Speedup shares its simulation with Figure 11 (the harness
// computes both metrics in one pass); it is kept as a separate bench target
// per the experiment index.
func BenchmarkFig12Speedup(b *testing.B) {
	cfg := experiments.Quick()
	for i := 0; i < b.N; i++ {
		f, err := experiments.RunFig11(cfg)
		if err != nil {
			b.Fatal(err)
		}
		renderQuiet(b, f)
	}
}

func BenchmarkFig13Multicore(b *testing.B) {
	cfg := experiments.Quick()
	for i := 0; i < b.N; i++ {
		f, err := experiments.RunFig13(cfg)
		if err != nil {
			b.Fatal(err)
		}
		renderQuiet(b, f)
	}
}

func BenchmarkFig14SequenceLength(b *testing.B) {
	cfg := experiments.Quick()
	for i := 0; i < b.N; i++ {
		f, err := experiments.RunFig14(cfg, []int{5, 10}, []int{2, 5})
		if err != nil {
			b.Fatal(err)
		}
		renderQuiet(b, f)
	}
}

func BenchmarkFig15Convergence(b *testing.B) {
	cfg := experiments.Quick()
	for i := 0; i < b.N; i++ {
		f, err := experiments.RunFig15(cfg)
		if err != nil {
			b.Fatal(err)
		}
		renderQuiet(b, f)
	}
}

func BenchmarkTable3Cost(b *testing.B) {
	cfg := experiments.Quick()
	for i := 0; i < b.N; i++ {
		t, err := experiments.RunTable3(cfg)
		if err != nil {
			b.Fatal(err)
		}
		renderQuiet(b, t)
	}
}

func BenchmarkTable4Anchor(b *testing.B) {
	cfg := experiments.Quick()
	for i := 0; i < b.N; i++ {
		t, err := experiments.RunTable4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		renderQuiet(b, t)
	}
}

// --- Ablations (DESIGN.md §4) ---

func BenchmarkAblationOptgenVsBelady(b *testing.B) {
	cfg := experiments.Quick()
	for i := 0; i < b.N; i++ {
		a, err := experiments.RunAblationOptgenVsBelady(cfg)
		if err != nil {
			b.Fatal(err)
		}
		renderQuiet(b, a)
	}
}

func BenchmarkAblationOrderedVsUnordered(b *testing.B) {
	cfg := experiments.Quick()
	for i := 0; i < b.N; i++ {
		a, err := experiments.RunAblationOrderedVsUnordered(cfg)
		if err != nil {
			b.Fatal(err)
		}
		renderQuiet(b, a)
	}
}

func BenchmarkAblationThreshold(b *testing.B) {
	cfg := experiments.Quick()
	for i := 0; i < b.N; i++ {
		a, err := experiments.RunAblationThreshold(cfg)
		if err != nil {
			b.Fatal(err)
		}
		renderQuiet(b, a)
	}
}

func BenchmarkAblationTableSize(b *testing.B) {
	cfg := experiments.Quick()
	for i := 0; i < b.N; i++ {
		a, err := experiments.RunAblationTableSize(cfg)
		if err != nil {
			b.Fatal(err)
		}
		renderQuiet(b, a)
	}
}

func BenchmarkAblationHistoryLen(b *testing.B) {
	cfg := experiments.Quick()
	for i := 0; i < b.N; i++ {
		a, err := experiments.RunAblationHistoryLen(cfg)
		if err != nil {
			b.Fatal(err)
		}
		renderQuiet(b, a)
	}
}

// BenchmarkRunTable2Parallel measures the worker-pool scaling of the
// parallel experiment runner (internal/simrunner). Results are identical at
// every worker count; only wall-clock time changes. On a single-CPU box the
// variants coincide — compare workers=1 vs workers=4 on multi-core hardware.
func BenchmarkRunTable2Parallel(b *testing.B) {
	for _, workers := range []int{1, 4, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := experiments.Quick()
			cfg.Workers = workers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Reset the trace store so every iteration measures a cold
				// run, like one cmd/experiments invocation; a warm store
				// across iterations would overstate the speedup.
				workload.DefaultStore.Reset()
				if _, err := experiments.RunTable2(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig11Sweep measures the full single-core policy sweep (33
// benchmarks × 5 policies at Quick scale): the workload the trace store and
// the fast upper-level filter target. BENCH_sim.json records its results.
func BenchmarkFig11Sweep(b *testing.B) {
	cfg := experiments.Quick()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Cold store per iteration: see BenchmarkRunTable2Parallel.
		workload.DefaultStore.Reset()
		if _, err := experiments.RunFig11(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Sweep pruning: the learned proxy simulator ---

// benchSweepSetup loads the embedded full-fidelity surrogate model and
// pre-warms every grid trace outside the timed region, so both sweep
// benchmarks measure simulation strategy — exhaustive vs confidence-gated
// pruning — not trace generation.
func benchSweepSetup(b *testing.B) (experiments.Config, experiments.SweepOptions) {
	b.Helper()
	cfg := experiments.Default()
	est, err := experiments.BenchEstimator()
	if err != nil {
		b.Fatal(err)
	}
	wls := experiments.BenchSweepWorkloads()
	for _, wl := range wls {
		spec, err := workload.Resolve(wl)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := workload.SharedE(spec, cfg.Accesses, cfg.Seed); err != nil {
			b.Fatal(err)
		}
	}
	return cfg, experiments.SweepOptions{Workloads: wls, Estimator: est}
}

// BenchmarkSweepPruned measures the surrogate-pruned configuration sweep at
// full fidelity (the 228-cell BenchSweepWorkloads grid at 1M accesses): the
// confidence-gated fast path /v1/estimate serves. Compare against
// BenchmarkSweepExhaustive on the same grid; the prunefactor metric records
// grid cells per exact simulation. TestSweepPrunedNeverWrongOnFrontier holds
// the correctness side: the pruned frontier is always the exhaustive one.
func BenchmarkSweepPruned(b *testing.B) {
	cfg, opts := benchSweepSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := experiments.RunSweepPruned(cfg, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(s.PruneFactor(), "prunefactor")
	}
}

// BenchmarkSweepExhaustive is the baseline BenchmarkSweepPruned is measured
// against: every cell of the same grid simulated exactly.
func BenchmarkSweepExhaustive(b *testing.B) {
	cfg, opts := benchSweepSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunSweepExhaustive(cfg, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Microbenchmarks: raw simulator throughput ---

// BenchmarkHierarchyAccess measures the per-access cost of the three-level
// hierarchy under an LRU LLC: the hot loop every simulation pays, dominated
// by the upper-level L1/L2 filter.
func BenchmarkHierarchyAccess(b *testing.B) {
	spec, err := workload.Lookup("omnetpp")
	if err != nil {
		b.Fatal(err)
	}
	tr := spec.Generate(200_000, 42)
	h, err := cpu.BuildHierarchy(1, "lru")
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(tr.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cpu.RunFunctional(context.Background(), tr, h, 0, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceGenerate measures raw synthetic trace generation — the cost
// the shared trace store de-duplicates across policy jobs.
func BenchmarkTraceGenerate(b *testing.B) {
	spec, err := workload.Lookup("omnetpp")
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(200_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := spec.Generate(200_000, 42)
		if tr.Len() != 200_000 {
			b.Fatal("short trace")
		}
	}
}

func BenchmarkSimulatorThroughput(b *testing.B) {
	spec, err := workload.Lookup("omnetpp")
	if err != nil {
		b.Fatal(err)
	}
	tr := spec.Generate(200_000, 42)
	for _, pol := range []string{"lru", "ship++", "hawkeye", "glider"} {
		b.Run(pol, func(b *testing.B) {
			h, err := cpu.BuildHierarchy(1, pol)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(tr.Len()))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cpu.RunFunctional(context.Background(), tr, h, 0, false); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExtensionMLP covers the paper's future-work direction: MPPPB's
// multiperspective features inside a deep model (see DESIGN.md §4).
func BenchmarkExtensionMLP(b *testing.B) {
	cfg := experiments.Quick()
	for i := 0; i < b.N; i++ {
		e, err := experiments.RunExtensionMLP(cfg)
		if err != nil {
			b.Fatal(err)
		}
		renderQuiet(b, e)
	}
}

// BenchmarkLineage measures the §2.1 policy-evolution study.
func BenchmarkLineage(b *testing.B) {
	cfg := experiments.Quick()
	for i := 0; i < b.N; i++ {
		l, err := experiments.RunLineage(cfg)
		if err != nil {
			b.Fatal(err)
		}
		renderQuiet(b, l)
	}
}
