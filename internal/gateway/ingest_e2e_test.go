package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"glider/internal/experiments"
	"glider/internal/policy"
	"glider/internal/server"
)

// The gateway must proxy ingested-workload jobs end to end: spec strings
// route through the ring to a backend, execute on the shared cell entry
// points, and come back byte-identical to a direct run — with canonical
// spellings collapsing to one hash across the whole cluster.

func TestGatewayServesIngestedScenarios(t *testing.T) {
	const (
		accesses = 6_000
		seed     = 42
	)
	scenarios := []string{
		"zipf(objects=4096,skew=0.9,scan-every=2000,scan-len=256)",
		"mix(rr,zipf(objects=2048,skew=1.1),mcf)",
	}
	// Registry-driven so new policies are covered automatically; the
	// cheap memoryless baselines are skipped to keep the e2e suite fast.
	skip := map[string]bool{"mru": true, "random": true, "lip": true, "dip": true}
	var policies []string
	for _, name := range policy.Names() {
		if !skip[name] {
			policies = append(policies, name)
		}
	}
	c := newCluster(t, 3, realCellExec, nil)

	for _, scen := range scenarios {
		for _, pol := range policies {
			res, err := experiments.RunCell(context.Background(), scen, pol, accesses, seed)
			if err != nil {
				t.Fatalf("direct %s/%s: %v", scen, pol, err)
			}
			direct, err := json.Marshal(res)
			if err != nil {
				t.Fatal(err)
			}
			body := fmt.Sprintf(`{"workload":%q,"policy":%q,"accesses":%d,"seed":%d}`, scen, pol, accesses, seed)
			status, _, data := postJSON(t, c.ts, "/v1/sim", body)
			if status != http.StatusOK {
				t.Fatalf("%s/%s: status %d, body %s", scen, pol, status, data)
			}
			env := decodeEnvelope(t, data)
			if !bytes.Equal(env.Result, direct) {
				t.Errorf("%s/%s: gateway bytes diverge from direct run\n gateway: %s\n  direct: %s", scen, pol, env.Result, direct)
			}
		}
	}

	// Spellings canonicalize before routing, so both land on one hash and
	// the repeat is served from cache wherever it lands.
	spellings := []string{
		"zipf(objects=4096,skew=0.90,span=1,scan-every=2000,scan-len=256)",
		scenarios[0],
	}
	var envs []server.Envelope
	for _, w := range spellings {
		body := fmt.Sprintf(`{"workload":%q,"policy":"lru","accesses":%d,"seed":%d}`, w, accesses, seed)
		status, _, data := postJSON(t, c.ts, "/v1/sim", body)
		if status != http.StatusOK {
			t.Fatalf("%s: status %d, body %s", w, status, data)
		}
		envs = append(envs, decodeEnvelope(t, data))
	}
	if envs[0].Hash != envs[1].Hash {
		t.Fatalf("spellings hash differently across the gateway: %s vs %s", envs[0].Hash, envs[1].Hash)
	}
	if !bytes.Equal(envs[0].Result, envs[1].Result) {
		t.Fatal("spellings returned different payloads")
	}

	// Malformed specs are rejected at the edge with 422.
	status, _, data := postJSON(t, c.ts, "/v1/sim",
		`{"workload":"zipf(objects=4096)","policy":"lru","accesses":1000,"seed":1}`)
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("malformed spec: status %d, body %s", status, data)
	}
}

func TestGatewayCatalogProxiesSchemes(t *testing.T) {
	c := newCluster(t, 2, realCellExec, nil)
	status, _, body := getJSON(t, c.ts, "/v1/catalog")
	if status != http.StatusOK {
		t.Fatalf("catalog: status %d", status)
	}
	var cat struct {
		Schemes []string `json:"schemes"`
	}
	if err := json.Unmarshal(body, &cat); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"champsim", "mix", "zipf"} {
		found := false
		for _, s := range cat.Schemes {
			if s == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("proxied catalog schemes %v missing %q", cat.Schemes, want)
		}
	}
}
