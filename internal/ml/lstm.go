package ml

import "math/rand"

// LSTM is a single-layer Long Short-Term Memory network (Hochreiter &
// Schmidhuber, 1997) with the standard gate formulation:
//
//	i = σ(Wxi·x + Whi·h' + bi)    f = σ(Wxf·x + Whf·h' + bf)
//	g = tanh(Wxg·x + Whg·h' + bg) o = σ(Wxo·x + Who·h' + bo)
//	c = f∘c' + i∘g                h = o∘tanh(c)
//
// The four gates are packed in one matrix pair (Wx: 4H×E, Wh: 4H×H) in
// i, f, g, o order. The forget-gate bias is initialized to 1, the usual
// trick for learning long dependences.
type LSTM struct {
	// In is the input width (embedding dim), Hidden the state width.
	In, Hidden int

	wx, wh *Mat
	b      Vec

	pWx, pWh, pB *Param
	gWx, gWh     *Mat
	gB           Vec
}

// NewLSTM builds an LSTM layer with Xavier-initialized weights.
func NewLSTM(in, hidden int, r *rand.Rand) *LSTM {
	l := &LSTM{
		In: in, Hidden: hidden,
		wx: NewMat(4*hidden, in),
		wh: NewMat(4*hidden, hidden),
		b:  NewVec(4 * hidden),
	}
	l.wx.XavierInit(r)
	l.wh.XavierInit(r)
	for i := hidden; i < 2*hidden; i++ {
		l.b[i] = 1 // forget gate bias
	}
	l.pWx = NewParam("lstm.wx", l.wx.Data)
	l.pWh = NewParam("lstm.wh", l.wh.Data)
	l.pB = NewParam("lstm.b", l.b)
	l.gWx = &Mat{Rows: 4 * hidden, Cols: in, Data: l.pWx.G}
	l.gWh = &Mat{Rows: 4 * hidden, Cols: hidden, Data: l.pWh.G}
	l.gB = Vec(l.pB.G)
	return l
}

// Params exposes the trainable tensors.
func (l *LSTM) Params() []*Param { return []*Param{l.pWx, l.pWh, l.pB} }

// NumWeights returns the parameter count.
func (l *LSTM) NumWeights() int {
	return len(l.wx.Data) + len(l.wh.Data) + len(l.b)
}

// LSTMState holds the per-timestep activations the backward pass needs.
type LSTMState struct {
	X          Vec // input
	I, F, G, O Vec // gate activations
	C, H       Vec // cell and hidden state after the step
	CPrev      Vec // cell state before the step
	HPrev      Vec // hidden state before the step
}

// Step runs one timestep from (hPrev, cPrev) on input x and returns the
// recorded state.
func (l *LSTM) Step(x, hPrev, cPrev Vec) *LSTMState {
	H := l.Hidden
	z := NewVec(4 * H)
	l.wx.MulVec(x, z)
	tmp := NewVec(4 * H)
	l.wh.MulVec(hPrev, tmp)
	for i := range z {
		z[i] += tmp[i] + l.b[i]
	}
	st := &LSTMState{
		X: x, CPrev: cPrev, HPrev: hPrev,
		I: NewVec(H), F: NewVec(H), G: NewVec(H), O: NewVec(H),
		C: NewVec(H), H: NewVec(H),
	}
	for j := 0; j < H; j++ {
		st.I[j] = Sigmoid(z[j])
		st.F[j] = Sigmoid(z[H+j])
		st.G[j] = Tanh(z[2*H+j])
		st.O[j] = Sigmoid(z[3*H+j])
		st.C[j] = st.F[j]*cPrev[j] + st.I[j]*st.G[j]
		st.H[j] = st.O[j] * Tanh(st.C[j])
	}
	return st
}

// Forward runs the whole input sequence from zero state and returns the
// per-step states (states[t].H is the hidden state after step t).
func (l *LSTM) Forward(inputs []Vec) []*LSTMState {
	states := make([]*LSTMState, len(inputs))
	h := NewVec(l.Hidden)
	c := NewVec(l.Hidden)
	for t, x := range inputs {
		states[t] = l.Step(x, h, c)
		h, c = states[t].H, states[t].C
	}
	return states
}

// Backward runs backpropagation through time. dH[t] is ∂L/∂h_t accumulated
// from the layers above (attention/output); the returned slice holds
// ∂L/∂x_t for the embedding layer. Gradients accumulate into the layer's
// Params.
func (l *LSTM) Backward(states []*LSTMState, dH []Vec) []Vec {
	H := l.Hidden
	dX := make([]Vec, len(states))
	dhNext := NewVec(H)
	dcNext := NewVec(H)
	dz := NewVec(4 * H)

	for t := len(states) - 1; t >= 0; t-- {
		st := states[t]
		dh := dH[t].Clone()
		dh.Add(dhNext)

		for j := 0; j < H; j++ {
			tc := Tanh(st.C[j])
			do := dh[j] * tc
			dc := dh[j]*st.O[j]*(1-tc*tc) + dcNext[j]

			di := dc * st.G[j]
			df := dc * st.CPrev[j]
			dg := dc * st.I[j]

			dz[j] = di * st.I[j] * (1 - st.I[j])
			dz[H+j] = df * st.F[j] * (1 - st.F[j])
			dz[2*H+j] = dg * (1 - st.G[j]*st.G[j])
			dz[3*H+j] = do * st.O[j] * (1 - st.O[j])

			dcNext[j] = dc * st.F[j]
		}

		// Accumulate weight gradients: gWx += dz·xᵀ, gWh += dz·h'ᵀ, gB += dz.
		l.gWx.AddOuter(dz, st.X)
		l.gWh.AddOuter(dz, st.HPrev)
		l.gB.Add(dz)

		// Propagate to input and previous hidden state.
		dx := NewVec(l.In)
		l.wx.MulVecT(dz, dx)
		dX[t] = dx

		dhNext.Zero()
		l.wh.MulVecT(dz, dhNext)
	}
	return dX
}
