// Package trace defines the memory-access trace representation shared by the
// whole simulator: a trace is the time-ordered sequence of last-level-cache
// accesses observed for one core, each identified by the program counter (PC)
// of the load/store that issued it and the cache-block-aligned address it
// touched.
//
// The package also provides binary and text codecs so traces can be stored on
// disk and replayed, plus summary statistics matching Table 2 of the paper.
package trace

import (
	"fmt"
	"sort"
)

// BlockShift is log2 of the cache block size (64-byte blocks).
const BlockShift = 6

// BlockSize is the cache block size in bytes.
const BlockSize = 1 << BlockShift

// Kind classifies an access. The replacement studies in the paper operate on
// demand loads and stores reaching the LLC; writebacks are modeled so that
// dirty evictions occupy DRAM bandwidth in the timing model.
type Kind uint8

const (
	// Load is a demand data load.
	Load Kind = iota
	// Store is a demand data store (write-allocate).
	Store
	// Writeback is a dirty eviction from an upper level.
	Writeback
)

// String returns a short human-readable name for the access kind.
func (k Kind) String() string {
	switch k {
	case Load:
		return "load"
	case Store:
		return "store"
	case Writeback:
		return "writeback"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Access is one memory reference in a trace.
type Access struct {
	// PC identifies the static load/store instruction.
	PC uint64
	// Addr is the byte address referenced. Policies operate on the block
	// address Addr >> BlockShift.
	Addr uint64
	// Core is the issuing core (0 for single-core traces).
	Core uint8
	// Kind is the access type.
	Kind Kind
}

// Block returns the cache-block-aligned address of the access.
func (a Access) Block() uint64 { return a.Addr >> BlockShift }

// Trace is an in-memory access trace with an identifying name.
type Trace struct {
	// Name identifies the workload the trace was generated from.
	Name string
	// Accesses is the time-ordered access stream.
	Accesses []Access
}

// New returns an empty trace with the given name and capacity hint.
func New(name string, capacity int) *Trace {
	return &Trace{Name: name, Accesses: make([]Access, 0, capacity)}
}

// Append adds one access to the trace.
func (t *Trace) Append(a Access) { t.Accesses = append(t.Accesses, a) }

// Len returns the number of accesses.
func (t *Trace) Len() int { return len(t.Accesses) }

// Slice returns a sub-trace covering accesses [lo, hi). The underlying
// storage is shared with the parent trace.
func (t *Trace) Slice(lo, hi int) *Trace {
	if lo < 0 {
		lo = 0
	}
	if hi > len(t.Accesses) {
		hi = len(t.Accesses)
	}
	if lo > hi {
		lo = hi
	}
	return &Trace{Name: t.Name, Accesses: t.Accesses[lo:hi]}
}

// PCs returns the distinct PCs in the trace in ascending order.
func (t *Trace) PCs() []uint64 {
	seen := make(map[uint64]struct{})
	for _, a := range t.Accesses {
		seen[a.PC] = struct{}{}
	}
	out := make([]uint64, 0, len(seen))
	for pc := range seen {
		out = append(out, pc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Stats summarizes a trace the way Table 2 of the paper does.
type Stats struct {
	// Name is the trace name.
	Name string
	// Accesses is the total number of accesses.
	Accesses int
	// PCs is the number of distinct program counters.
	PCs int
	// Addrs is the number of distinct block addresses.
	Addrs int
	// AccessesPerPC is Accesses / PCs.
	AccessesPerPC float64
	// AccessesPerAddr is Accesses / Addrs.
	AccessesPerAddr float64
}

// Summarize computes trace statistics.
func (t *Trace) Summarize() Stats {
	pcs := make(map[uint64]struct{})
	addrs := make(map[uint64]struct{})
	for _, a := range t.Accesses {
		pcs[a.PC] = struct{}{}
		addrs[a.Block()] = struct{}{}
	}
	s := Stats{
		Name:     t.Name,
		Accesses: len(t.Accesses),
		PCs:      len(pcs),
		Addrs:    len(addrs),
	}
	if s.PCs > 0 {
		s.AccessesPerPC = float64(s.Accesses) / float64(s.PCs)
	}
	if s.Addrs > 0 {
		s.AccessesPerAddr = float64(s.Accesses) / float64(s.Addrs)
	}
	return s
}

// Interleave merges per-core traces round-robin into a single multi-core
// stream, tagging each access with its core ID. When one trace is exhausted
// it wraps around (rewinding, as the paper's multi-core methodology does)
// until the longest trace has been fully consumed once.
func Interleave(name string, traces ...*Trace) *Trace {
	if len(traces) == 0 {
		return New(name, 0)
	}
	longest := 0
	for _, t := range traces {
		if t.Len() > longest {
			longest = t.Len()
		}
	}
	out := New(name, longest*len(traces))
	for i := 0; i < longest; i++ {
		for c, t := range traces {
			if t.Len() == 0 {
				continue
			}
			a := t.Accesses[i%t.Len()]
			a.Core = uint8(c)
			out.Append(a)
		}
	}
	return out
}
