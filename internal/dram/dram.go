// Package dram models the main-memory timing of Table 1: an 800 MHz DDR
// interface with tRP = tRCD = tCAS = 24 memory cycles, 3.2 GB/s of bandwidth
// for the single-core configuration and 12.8 GB/s for the 4-core one.
//
// The model is deliberately first-order: per-bank row-buffer state gives
// row hits a CAS-only latency and row conflicts the full
// precharge+activate+CAS penalty, and a shared data bus enforces the
// configured bandwidth by spacing transfer completions.
package dram

import (
	"glider/internal/obs"
	"glider/internal/trace"
)

// Config parameterizes the memory model. Latencies are expressed in CPU
// cycles (the CPU model runs at a nominal 3.2 GHz, 4× the 800 MHz memory
// clock, so each memory-clock parameter counts 4 CPU cycles).
type Config struct {
	// Banks is the number of DRAM banks.
	Banks int
	// RowBlocks is the number of cache blocks per DRAM row (row size /
	// block size; 2 KB rows → 32 blocks).
	RowBlocks uint64
	// TRP, TRCD, TCAS are the DRAM timing parameters in memory cycles.
	TRP, TRCD, TCAS int
	// CPUPerMemCycle converts memory cycles to CPU cycles.
	CPUPerMemCycle int
	// BytesPerCycle is the data-bus bandwidth in bytes per CPU cycle.
	BytesPerCycle float64
}

// SingleCoreConfig is the paper's single-core DRAM: 3.2 GB/s at a 3.2 GHz
// core clock is 1 byte per CPU cycle.
func SingleCoreConfig() Config {
	return Config{
		Banks:          8,
		RowBlocks:      32,
		TRP:            24,
		TRCD:           24,
		TCAS:           24,
		CPUPerMemCycle: 4,
		BytesPerCycle:  1.0,
	}
}

// QuadCoreConfig is the 4-core DRAM: 12.8 GB/s → 4 bytes per CPU cycle.
func QuadCoreConfig() Config {
	c := SingleCoreConfig()
	c.BytesPerCycle = 4.0
	return c
}

// DRAM is the memory timing model. It is not safe for concurrent use; the
// simulator drives it from a single goroutine.
type DRAM struct {
	cfg       Config
	openRow   []uint64 // per bank; ^0 = closed
	busFreeAt float64  // CPU cycle when the data bus is next free
	stats     Stats

	// Observability (nil when disabled; see AttachObs).
	obsReadLat  *obs.Histogram
	obsBusStall *obs.Histogram
	obsQueue    *obs.Histogram
	obsRowHits  *obs.Counter
	obsRowConf  *obs.Counter
	obsBankVec  *obs.Vec
}

// AttachObs publishes DRAM telemetry: read latency and bus-stall
// distributions, queue depth (outstanding transfers ahead of a request, in
// block-transfer units), row hit/conflict counters, and per-bank traffic.
func (d *DRAM) AttachObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	d.obsReadLat = reg.Histogram("dram.read.cycles", obs.ExpBuckets(64, 2, 8))
	d.obsBusStall = reg.Histogram("dram.bus.stall.cycles", obs.ExpBuckets(16, 2, 8))
	d.obsQueue = reg.Histogram("dram.queue.depth", obs.LinearBuckets(0, 1, 9))
	d.obsRowHits = reg.Counter("dram.row.hits")
	d.obsRowConf = reg.Counter("dram.row.conflicts")
	d.obsBankVec = reg.Vec("dram.bank.accesses", d.cfg.Banks)
}

// Stats counts DRAM traffic.
type Stats struct {
	Reads, Writes         uint64
	RowHits, RowConflicts uint64
	TotalLatency          uint64 // sum of read latencies in CPU cycles
	BusStallCycles        float64
}

// New builds a DRAM model.
func New(cfg Config) *DRAM {
	d := &DRAM{cfg: cfg, openRow: make([]uint64, cfg.Banks)}
	for i := range d.openRow {
		d.openRow[i] = ^uint64(0)
	}
	return d
}

// Stats returns the accumulated counters.
func (d *DRAM) Stats() Stats { return d.stats }

// Access services a block read or write beginning no earlier than CPU cycle
// `now` and returns the cycle at which the data is available (reads) or
// accepted (writes).
func (d *DRAM) Access(block uint64, write bool, now float64) float64 {
	row := block / d.cfg.RowBlocks
	bank := int(row) % d.cfg.Banks

	memLat := d.cfg.TCAS
	if d.openRow[bank] == row {
		d.stats.RowHits++
		d.obsRowHits.Inc()
	} else {
		d.stats.RowConflicts++
		d.obsRowConf.Inc()
		memLat += d.cfg.TRP + d.cfg.TRCD
		d.openRow[bank] = row
	}
	lat := float64(memLat * d.cfg.CPUPerMemCycle)

	// Bus: each block transfer occupies BlockSize/BytesPerCycle cycles.
	transfer := float64(trace.BlockSize) / d.cfg.BytesPerCycle
	start := now
	if d.busFreeAt > start {
		d.stats.BusStallCycles += d.busFreeAt - start
		start = d.busFreeAt
	}
	done := start + lat + transfer
	d.busFreeAt = start + transfer

	if d.obsQueue != nil {
		d.obsBankVec.Inc(bank)
		// Queue depth: how many block transfers were already queued ahead of
		// this request when it arrived.
		d.obsQueue.Observe((start - now) / transfer)
		if start > now {
			d.obsBusStall.Observe(start - now)
		}
	}

	if write {
		d.stats.Writes++
	} else {
		d.stats.Reads++
		d.stats.TotalLatency += uint64(done - now)
		d.obsReadLat.Observe(done - now)
	}
	return done
}

// AverageReadLatency returns the mean read latency in CPU cycles.
func (s Stats) AverageReadLatency() float64 {
	if s.Reads == 0 {
		return 0
	}
	return float64(s.TotalLatency) / float64(s.Reads)
}
