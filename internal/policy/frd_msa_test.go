package policy

// Unit tests for the reuse-distance family's building blocks: bucket
// arithmetic, the lexicographic MSA rank comparison, writeback handling,
// predictor capability, obs wiring, and model introspection.

import (
	"strings"
	"testing"

	"glider/internal/cache"
	"glider/internal/obs"
	"glider/internal/trace"
)

func TestReuseBucketRoundTrip(t *testing.T) {
	t.Parallel()
	cases := []struct {
		d uint64
		b int
	}{
		{1, 1}, {2, 2}, {3, 2}, {4, 3}, {64, 7}, {65, 7}, {1 << 20, 21},
	}
	for _, c := range cases {
		if got := reuseBucket(c.d); got != c.b {
			t.Errorf("reuseBucket(%d) = %d, want %d", c.d, got, c.b)
		}
		// The representative distance of a bucket must cover the distances
		// that map into it.
		if rep := bucketDist(reuseBucket(c.d)); rep < c.d {
			t.Errorf("bucketDist(reuseBucket(%d)) = %d < %d", c.d, rep, c.d)
		}
	}
	if reuseBucket(ReuseNever) != reuseMaxBucket {
		t.Error("ReuseNever must map to the max bucket")
	}
	if bucketDist(reuseMaxBucket) != ReuseNever {
		t.Error("max bucket must map back to ReuseNever")
	}
	if satAdd(^uint64(0)>>2, ReuseNever) <= ^uint64(0)>>2 {
		t.Error("satAdd must not wrap")
	}
}

func TestMSARankGreater(t *testing.T) {
	t.Parallel()
	const clock = 100
	cases := []struct {
		name string
		a, b []uint64
		want bool
	}{
		{"first element decides", []uint64{300, 310}, []uint64{200, 400}, true},
		{"first element decides (reverse)", []uint64{200, 400}, []uint64{300, 310}, false},
		{"tie broken by second", []uint64{200, 400}, []uint64{200, 300}, true},
		{"equal is not greater", []uint64{200, 300}, []uint64{200, 300}, false},
		{"expired prefix skipped", []uint64{50, 300}, []uint64{200, 400}, true},
		{"fully expired is maximal", []uint64{50, 60}, []uint64{200, 400}, true},
		{"nothing beats fully expired", []uint64{200, 400}, []uint64{50, 60}, false},
		{"both expired tie", []uint64{50, 60}, []uint64{70, 80}, false},
		{"shorter suffix ranks higher on tie", []uint64{90, 200}, []uint64{200, 300}, true},
	}
	for _, c := range cases {
		if got := msaRankGreater(c.a, c.b, clock); got != c.want {
			t.Errorf("%s: msaRankGreater(%v, %v) = %v, want %v", c.name, c.a, c.b, got, c.want)
		}
	}
}

// TestWritebackFillsAreEvictFirst: a writeback-filled line carries no reuse
// prediction, so the next demand miss in the set must evict it rather than
// a predicted-live line.
func TestWritebackFillsAreEvictFirst(t *testing.T) {
	t.Parallel()
	for _, build := range []func() cache.Policy{
		func() cache.Policy { return NewFRD(1, 2) },
		func() cache.Policy { return NewMSA(1, 2) },
	} {
		p := build()
		c, err := cache.New(cache.Config{Name: "wb", Sets: 1, Ways: 2}, p)
		if err != nil {
			t.Fatal(err)
		}
		c.Access(0xA, 10, 0, trace.Load)      // demand line
		c.Access(0xB, 20, 0, trace.Writeback) // writeback fill: expired stamp
		r := c.Access(0xA, 30, 0, trace.Load) // must evict the writeback line
		if r.Way == cache.Bypass {
			t.Fatalf("%s: demand miss bypassed instead of evicting the writeback line", p.Name())
		}
		if !r.Evicted || r.EvictedLine.Tag != 20 {
			t.Fatalf("%s: evicted %+v, want the writeback-filled line (tag 20)", p.Name(), r)
		}
	}
}

func TestLearnedPoliciesPredictFriendly(t *testing.T) {
	t.Parallel()
	// Near-immediate reuse → friendly; a PC trained to "never reuse" →
	// averse. Drive the learned models with crafted streams long enough to
	// trained state.
	const sets, ways = 16, 4
	for _, name := range []string{"frd", "msa"} {
		p, _ := New(name, sets, ways)
		c, err := cache.New(cache.Config{Name: "pf", Sets: sets, Ways: ways}, p)
		if err != nil {
			t.Fatal(err)
		}
		// PC 0xA re-touches a tiny working set (distance 8); PC 0xB scans.
		next := uint64(1 << 30)
		for it := 0; it < 3000; it++ {
			c.Access(0xA, uint64(it%8), 0, trace.Load)
			c.Access(0xB, next, 0, trace.Load)
			next++
		}
		fp, ok := p.(interface {
			PredictFriendly(pc uint64, core uint8) bool
		})
		if !ok {
			t.Fatalf("%s does not implement PredictFriendly", name)
		}
		if !fp.PredictFriendly(0xA, 0) {
			t.Errorf("%s: hot PC 0xA classified averse", name)
		}
		if fp.PredictFriendly(0xB, 0) {
			t.Errorf("%s: scan PC 0xB classified friendly", name)
		}
	}
}

func TestLearnedPolicyObsAndIntrospection(t *testing.T) {
	t.Parallel()
	for _, name := range []string{"frd", "msa"} {
		reg := obs.NewRegistry()
		sink := obs.NewRingSink(256)
		p, _ := New(name, 16, 4)
		p.(obs.Attacher).AttachObs(reg, sink)
		c, err := cache.New(cache.Config{Name: "obs", Sets: 16, Ways: 4}, p)
		if err != nil {
			t.Fatal(err)
		}
		for it := 0; it < 2000; it++ {
			c.Access(uint64(it%5), uint64(it%96), 0, trace.Load)
		}
		p.(obs.Flusher).FlushObs()
		snap := reg.Snapshot()
		var sawTrain bool
		for _, counter := range snap.Counters {
			if strings.HasPrefix(counter.Name, name+".train") && counter.Value > 0 {
				sawTrain = true
			}
		}
		if !sawTrain {
			t.Errorf("%s: no training counters in snapshot", name)
		}
		events := sink.Events()
		if len(events) == 0 {
			t.Fatalf("%s: FlushObs emitted nothing", name)
		}
		var sawSummary, sawRow bool
		for _, e := range events {
			if e.Component == name && e.Event == "summary" {
				sawSummary = true
			}
			if e.Component == name && e.Event == "pc_error" {
				sawRow = true
			}
		}
		if !sawSummary || !sawRow {
			t.Errorf("%s: missing flush events (summary=%v, pc_error=%v)", name, sawSummary, sawRow)
		}
		mi := p.(ModelIntrospector)
		rows := mi.TopModelRows(3)
		if len(rows) == 0 || len(rows) > 3 {
			t.Fatalf("%s: TopModelRows(3) returned %d rows", name, len(rows))
		}
		for i := 1; i < len(rows); i++ {
			if rows[i].Samples > rows[i-1].Samples {
				t.Errorf("%s: rows not ordered by samples: %d after %d", name, rows[i].Samples, rows[i-1].Samples)
			}
		}
	}
}

func TestMSAStepsClamped(t *testing.T) {
	t.Parallel()
	if got := NewMSAK(4, 4, 0).Steps(); got != 1 {
		t.Errorf("k=0 clamped to %d, want 1", got)
	}
	if got := NewMSAK(4, 4, 100).Steps(); got != msaMaxSteps {
		t.Errorf("k=100 clamped to %d, want %d", got, msaMaxSteps)
	}
	if got := NewMSA(4, 4).Steps(); got != msaDefaultSteps {
		t.Errorf("default k = %d, want %d", got, msaDefaultSteps)
	}
}
