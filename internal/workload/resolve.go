package workload

// Workload-spec resolution.
//
// The static registry names the paper's 33 synthetic benchmarks. Everything
// else — ChampSim trace files, Zipf object streams, multi-tenant mixes —
// arrives as a spec string of the form scheme(args...), parsed by a scheme
// resolver registered here (internal/trace/ingest registers "champsim",
// "zipf", and "mix" from its init). Keeping the registry here and the
// parsers there avoids an import cycle: ingest imports workload, never the
// other way around.

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Resolver parses one spec string of its scheme into a Spec. The returned
// Spec's Name must be the canonical rendering of the spec, so that every
// spelling of the same workload shares one Store cache entry.
type Resolver func(spec string) (Spec, error)

var (
	schemeMu sync.RWMutex
	schemes  = map[string]Resolver{}
)

// RegisterScheme installs the resolver for spec strings of the form
// "scheme(...)". Registering a scheme twice panics — schemes are wired at
// init time and a silent overwrite would make resolution order-dependent.
func RegisterScheme(scheme string, r Resolver) {
	schemeMu.Lock()
	defer schemeMu.Unlock()
	if _, dup := schemes[scheme]; dup {
		panic(fmt.Sprintf("workload: scheme %q registered twice", scheme))
	}
	schemes[scheme] = r
}

// Schemes returns the registered scheme names in sorted order (for the
// gliderd catalog).
func Schemes() []string {
	schemeMu.RLock()
	defer schemeMu.RUnlock()
	out := make([]string, 0, len(schemes))
	for s := range schemes {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Resolve turns a workload name or spec string into a Spec: registry names
// resolve as Lookup does; strings of the form "scheme(args)" dispatch to the
// registered scheme resolver. The error for a malformed or unknown spec is
// always an error value, never a panic, whatever bytes arrive (the spec
// parser is fuzzed on this contract).
func Resolve(name string) (Spec, error) {
	if s, err := Lookup(name); err == nil {
		return s, nil
	}
	open := strings.IndexByte(name, '(')
	if open <= 0 || !strings.HasSuffix(name, ")") {
		return Spec{}, ErrUnknown{name}
	}
	scheme := name[:open]
	schemeMu.RLock()
	r, ok := schemes[scheme]
	schemeMu.RUnlock()
	if !ok {
		return Spec{}, fmt.Errorf("workload: unknown spec scheme %q in %q", scheme, name)
	}
	return r(name)
}
