package ml

import (
	"fmt"
	"math/rand"
)

// MLP is a small two-layer feed-forward classifier over sparse binary
// features: input → ReLU hidden layer → 2-way softmax. It implements the
// paper's stated future-work direction (§2.1): feeding MPPPB's
// multiperspective feature set into a deep model instead of a linear
// perceptron.
//
// Inputs are presented as the set of active feature indices (the features
// are binary), so the first layer's forward pass is a sum of columns.
type MLP struct {
	// In is the feature-space size, Hidden the hidden width.
	In, Hidden int

	w1 *Mat // Hidden × In
	b1 Vec
	w2 *Mat // 2 × Hidden
	b2 Vec

	params []*Param
	gW1    *Mat
	gB1    Vec
	gW2    *Mat
	gB2    Vec
	// lr is the SGD step. Updates are applied sparsely (only the touched
	// first-layer columns), which keeps per-sample cost proportional to
	// the active-feature count — a dense optimizer over the 4096-wide
	// first layer would dominate training time.
	lr float64
	// opt, when non-nil, replaces the sparse SGD step (used by the
	// gradient-checking tests to capture gradients).
	opt Optimizer
}

// NewMLP builds the classifier with Xavier initialization; training uses
// sparse SGD with the given learning rate.
func NewMLP(in, hidden int, lr float64, seed int64) (*MLP, error) {
	if in <= 0 || hidden <= 0 {
		return nil, fmt.Errorf("ml: invalid MLP dims in=%d hidden=%d", in, hidden)
	}
	if lr <= 0 {
		lr = 0.001
	}
	r := rand.New(rand.NewSource(seed))
	m := &MLP{
		In: in, Hidden: hidden,
		w1: NewMat(hidden, in),
		b1: NewVec(hidden),
		w2: NewMat(2, hidden),
		b2: NewVec(2),
	}
	m.w1.XavierInit(r)
	m.w2.XavierInit(r)
	pW1 := NewParam("mlp.w1", m.w1.Data)
	pB1 := NewParam("mlp.b1", m.b1)
	pW2 := NewParam("mlp.w2", m.w2.Data)
	pB2 := NewParam("mlp.b2", m.b2)
	m.params = []*Param{pW1, pB1, pW2, pB2}
	m.gW1 = &Mat{Rows: hidden, Cols: in, Data: pW1.G}
	m.gB1 = Vec(pB1.G)
	m.gW2 = &Mat{Rows: 2, Cols: hidden, Data: pW2.G}
	m.gB2 = Vec(pB2.G)
	m.lr = lr
	return m, nil
}

// NumWeights returns the parameter count.
func (m *MLP) NumWeights() int {
	return len(m.w1.Data) + len(m.b1) + len(m.w2.Data) + len(m.b2)
}

// forward computes hidden pre-activations, activations, and class
// probabilities for the active feature set.
func (m *MLP) forward(active []int) (z, h, probs Vec) {
	z = m.b1.Clone()
	for _, f := range active {
		f %= m.In
		if f < 0 {
			f += m.In
		}
		// Column f of w1.
		for j := 0; j < m.Hidden; j++ {
			z[j] += m.w1.Data[j*m.In+f]
		}
	}
	h = NewVec(m.Hidden)
	for j, v := range z {
		if v > 0 {
			h[j] = v
		}
	}
	logits := NewVec(2)
	m.w2.MulVec(h, logits)
	logits.Add(m.b2)
	probs = NewVec(2)
	Softmax(logits, probs)
	return z, h, probs
}

// Predict classifies the feature set as cache-friendly.
func (m *MLP) Predict(active []int) bool {
	_, _, p := m.forward(active)
	return p[1] >= p[0]
}

// Confidence returns P(cache-friendly).
func (m *MLP) Confidence(active []int) float64 {
	_, _, p := m.forward(active)
	return p[1]
}

// TrainSample performs one SGD step on a labeled sample and returns the
// cross-entropy loss.
func (m *MLP) TrainSample(active []int, friendly bool) float64 {
	z, h, probs := m.forward(active)
	y := 0
	if friendly {
		y = 1
	}
	loss := -logSafe(probs[y])

	dLogits := Vec{probs[0], probs[1]}
	dLogits[y] -= 1

	m.gW2.AddOuter(dLogits, h)
	m.gB2.Add(dLogits)

	dH := NewVec(m.Hidden)
	m.w2.MulVecT(dLogits, dH)
	// ReLU backward.
	for j := range dH {
		if z[j] <= 0 {
			dH[j] = 0
		}
	}
	m.gB1.Add(dH)
	for _, f := range active {
		f %= m.In
		if f < 0 {
			f += m.In
		}
		for j := 0; j < m.Hidden; j++ {
			m.gW1.Data[j*m.In+f] += dH[j]
		}
	}
	if m.opt != nil {
		m.opt.Step(m.params)
		return loss
	}
	// Sparse SGD: only the touched w1 columns plus the small dense tensors.
	for _, f := range active {
		f %= m.In
		if f < 0 {
			f += m.In
		}
		for j := 0; j < m.Hidden; j++ {
			i := j*m.In + f
			m.w1.Data[i] -= m.lr * m.gW1.Data[i]
			m.gW1.Data[i] = 0
		}
	}
	for j := range m.b1 {
		m.b1[j] -= m.lr * m.gB1[j]
		m.gB1[j] = 0
	}
	for i := range m.w2.Data {
		m.w2.Data[i] -= m.lr * m.gW2.Data[i]
		m.gW2.Data[i] = 0
	}
	for i := range m.b2 {
		m.b2[i] -= m.lr * m.gB2[i]
		m.gB2[i] = 0
	}
	return loss
}
