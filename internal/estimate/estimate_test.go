package estimate

import (
	"bytes"
	"context"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"

	"glider/internal/cpu"
	"glider/internal/workload"
)

// tinyConfig is a training grid small enough to simulate in well under a
// second: 3 workloads × 2 trace lengths × 3 seeds × 3 policies.
func tinyConfig() TrainConfig {
	return TrainConfig{
		Workloads:    []string{"omnetpp", "mcf", "sphinx3"},
		Policies:     []string{"lru", "lfu", "srrip"},
		AccessesList: []int{4_000, 8_000},
		Seed:         1234,
	}
}

// tinyModel trains the tiny grid once per test binary and hands out the
// shared result (training is pure; tests only read the model).
var tinyModel = sync.OnceValues(func() (*Estimator, error) {
	est, _, err := Train(context.Background(), tinyConfig())
	return est, err
})

func tinyEstimator(t *testing.T) *Estimator {
	t.Helper()
	est, err := tinyModel()
	if err != nil {
		t.Fatal(err)
	}
	return est
}

// featsFor extracts features from a fresh trace of a training workload.
func featsFor(t *testing.T, name string, accesses int, seed int64) []float64 {
	t.Helper()
	spec, err := workload.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := workload.SharedE(spec, accesses, seed)
	if err != nil {
		t.Fatal(err)
	}
	return Features(tr)
}

// TestTrainDeterministicAcrossWorkers pins the reproducibility claim the
// byte-identity guarantees rest on: the same config must yield an identical
// model — quantized weights, anchors, residuals, hull, everything — on a
// rerun and on any worker count.
func TestTrainDeterministicAcrossWorkers(t *testing.T) {
	base := tinyEstimator(t)
	for _, workers := range []int{1, 4} {
		cfg := tinyConfig()
		cfg.Workers = workers
		got, _, err := Train(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("workers=%d: model differs from baseline", workers)
		}
	}
}

// TestSaveLoadRoundTrip demands the persisted model is the serving model:
// structurally identical (including every quantized int16 weight) and
// prediction-identical on fresh queries.
func TestSaveLoadRoundTrip(t *testing.T) {
	est := tinyEstimator(t)
	var buf bytes.Buffer
	if err := est.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded, est) {
		t.Fatal("loaded model differs structurally from the saved one")
	}
	feats := featsFor(t, "omnetpp", 4_000, 99)
	for _, pol := range est.Policies() {
		a, b := est.Predict(pol, feats), loaded.Predict(pol, feats)
		if a != b {
			t.Fatalf("%s: prediction diverges after round trip: %+v vs %+v", pol, a, b)
		}
	}
}

func TestLoadRejectsGarbageAndSchemaDrift(t *testing.T) {
	if _, err := Load(strings.NewReader("junk")); err == nil {
		t.Fatal("garbage accepted")
	}
	// A model from a different feature schema must be refused, not served.
	est := tinyEstimator(t)
	bad := *est
	bad.Schema = SchemaVersion + 1
	var buf bytes.Buffer
	if err := bad.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); err == nil {
		t.Fatal("schema drift accepted")
	}
}

// TestConfidenceGate exercises all three gate outcomes: accept (in-hull
// query on a trained policy), refuse on an untrained policy, refuse on
// novel features.
func TestConfidenceGate(t *testing.T) {
	est := tinyEstimator(t)

	in := featsFor(t, "mcf", 8_000, 77)
	p := est.Predict("lru", in)
	if !p.Confident {
		t.Fatalf("in-hull query refused: %q", p.Reason)
	}
	if p.MissRate < 0 || p.MissRate > 1 || p.IPC < 0 {
		t.Fatalf("implausible prediction: %+v", p)
	}
	if p.MissBound < est.MinMissBound || p.IPCBound < est.MinIPCBound {
		t.Fatalf("bounds below the floors: %+v", p)
	}

	if p := est.Predict("glider", in); p.Confident || p.Reason != ReasonUntrainedPolicy {
		t.Fatalf("untrained policy: %+v", p)
	}

	// A 60k-access trace sits far outside the tiny model's log2_accesses
	// hull, so the gate must refuse rather than extrapolate.
	out := featsFor(t, "mcf", 60_000, 77)
	if p := est.Predict("lru", out); p.Confident || p.Reason != ReasonNovelFeatures {
		t.Fatalf("novel features accepted: %+v", p)
	}
}

// TestBoundCoverageOnFreshSeeds is the quality wall: on fresh traces of the
// training workloads (a seed no split saw), surrogate answers must track
// the exact simulation within their own reported bounds for nearly every
// cell, and on average much tighter than the worst case. The tolerances are
// deliberately checked in: if a refactor of the features, the quantization,
// or the bound math degrades the surrogate, this fails before any consumer
// notices.
func TestBoundCoverageOnFreshSeeds(t *testing.T) {
	est := tinyEstimator(t)
	cfg := tinyConfig()
	const freshSeed = 4321

	cells, covered := 0, 0
	var sumAbsErr float64
	for _, wl := range cfg.Workloads {
		spec, err := workload.Lookup(wl)
		if err != nil {
			t.Fatal(err)
		}
		for _, acc := range cfg.AccessesList {
			tr, err := workload.SharedE(spec, acc, freshSeed)
			if err != nil {
				t.Fatal(err)
			}
			feats := Features(tr)
			for _, pol := range cfg.Policies {
				p := est.Predict(pol, feats)
				if !p.Confident {
					t.Fatalf("%s/%d/%s: gate refused a training-grid cell: %s", wl, acc, pol, p.Reason)
				}
				res, err := cpu.SingleCore(context.Background(), spec, pol, acc, freshSeed)
				if err != nil {
					t.Fatal(err)
				}
				errMiss := math.Abs(p.MissRate - res.LLC.MissRate())
				sumAbsErr += errMiss
				cells++
				if errMiss <= p.MissBound {
					covered++
				}
			}
		}
	}
	// Conformal bounds promise coverage, not worst-case truth: demand at
	// least 16 of the 18 fresh cells inside their bounds, and a mean
	// absolute miss-rate error under 0.05.
	if covered < cells-2 {
		t.Fatalf("bound coverage %d/%d, want >= %d", covered, cells, cells-2)
	}
	if mae := sumAbsErr / float64(cells); mae > 0.05 {
		t.Fatalf("mean absolute miss-rate error %.4f exceeds 0.05", mae)
	}
}

// TestFeaturesDeterministic pins that feature extraction is a pure function
// of the trace.
func TestFeaturesDeterministic(t *testing.T) {
	a := featsFor(t, "omnetpp", 4_000, 5)
	b := featsFor(t, "omnetpp", 4_000, 5)
	if len(a) != FeatureDim || len(FeatureNames()) != FeatureDim {
		t.Fatalf("feature dim %d/%d, want %d", len(a), len(FeatureNames()), FeatureDim)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("features differ across extractions of the same trace")
	}
}

func TestTrainRejectsBadConfigs(t *testing.T) {
	bad := []TrainConfig{
		{Workloads: []string{"omnetpp"}, Policies: []string{"lru"}, AccessesList: []int{1000}},
		{Workloads: []string{"omnetpp", "mcf"}, AccessesList: []int{1000}},
		{Workloads: []string{"omnetpp", "mcf"}, Policies: []string{"lru"}},
		{Workloads: []string{"omnetpp", "nope"}, Policies: []string{"lru"}, AccessesList: []int{1000}},
		{Workloads: []string{"omnetpp", "mcf"}, Policies: []string{"lru", "lru"}, AccessesList: []int{1000}},
	}
	for i, cfg := range bad {
		if _, _, err := Train(context.Background(), cfg); err == nil {
			t.Fatalf("config %d accepted: %+v", i, cfg)
		}
	}
}
