// Command loadgen is an open-loop traffic generator for a gliderd node or a
// gateway-fronted fleet: Poisson arrivals (optionally ramping), a
// configurable sim/predict job mix, latency histograms and an in-flight
// timeline recorded through internal/obs, and a machine-readable SLO report
// (see EXPERIMENTS.md "Load-testing a fleet").
//
// Quickstart against a local 3-shard fleet (see cmd/gateway):
//
//	loadgen -target http://127.0.0.1:8080 -duration 30s -rate 20 -ramp-to 80 \
//	  -accesses 60000 -out slo.json -events load.jsonl -slo-p99 2s
//
// The exit status is 0 when the run met its SLO (or none was set), 1 on a
// violated SLO, 2 on usage errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"glider/internal/obs"
)

func main() {
	target := flag.String("target", "", "gateway or gliderd base URL (required)")
	duration := flag.Duration("duration", 10*time.Second, "run length")
	rate := flag.Float64("rate", 10, "arrival rate at t=0 (jobs/sec)")
	rampTo := flag.Float64("ramp-to", 0, "final arrival rate for a linear ramp (0 = constant)")
	seed := flag.Int64("seed", 1, "arrival schedule and job mix seed")
	workloads := flag.String("workloads", "omnetpp,mcf", "comma-separated workloads to sample")
	policies := flag.String("policies", "lru,glider", "comma-separated sim policies to sample")
	accesses := flag.Int("accesses", 20_000, "per-job trace length")
	predictFrac := flag.Float64("predict-fraction", 0.1, "share of jobs issued as predict queries")
	timeoutMS := flag.Int("timeout-ms", 0, "per-job deadline forwarded to the server (0 = server default)")
	out := flag.String("out", "", "SLO report path (default stdout)")
	events := flag.String("events", "", "JSONL event sink for per-request and timeline records")
	sample := flag.Duration("sample-every", 100*time.Millisecond, "in-flight timeline sampling period")
	sloP99 := flag.Duration("slo-p99", 0, "p99 latency objective (0 = report only, no grading)")
	sloErr := flag.Float64("slo-error-rate", 0.01, "max error rate for the SLO verdict")
	flag.Parse()

	cfg := Config{
		Target:          *target,
		Duration:        *duration,
		Rate:            *rate,
		RampTo:          *rampTo,
		Seed:            *seed,
		Workloads:       splitList(*workloads),
		Policies:        splitList(*policies),
		Accesses:        *accesses,
		PredictFraction: *predictFrac,
		TimeoutMS:       *timeoutMS,
		SampleEvery:     *sample,
	}
	if *events != "" {
		sink, err := obs.CreateJSONL(*events)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(2)
		}
		defer func() {
			if err := sink.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "loadgen: closing events: %v\n", err)
			}
		}()
		cfg.Sink = sink
	}

	rep, err := Run(context.Background(), cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(2)
	}
	if *sloP99 > 0 {
		rep.ApplySLO(*sloP99, *sloErr)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(2)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(2)
	}
	if rep.SLO != nil && !rep.SLO.Pass {
		fmt.Fprintf(os.Stderr, "loadgen: SLO violated: p99 %.4fs (target %.4fs), error rate %.4f (max %.4f)\n",
			rep.LatencyP99, rep.SLO.P99TargetSec, rep.SLO.ErrorRate, rep.SLO.MaxErrorRate)
		os.Exit(1)
	}
}
