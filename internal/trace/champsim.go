package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
)

// ChampSim trace import: the paper evaluates with the CRC2 framework, which
// replays ChampSim instruction traces. This decoder converts that format
// into this package's access stream so real SimPoint traces can be run
// through the simulator in place of the synthetic workloads.
//
// A ChampSim record is 64 bytes:
//
//	ip                    uint64
//	is_branch             uint8
//	branch_taken          uint8
//	destination_registers [2]uint8
//	source_registers      [4]uint8
//	destination_memory    [2]uint64   (store addresses; 0 = unused)
//	source_memory         [4]uint64   (load addresses; 0 = unused)
//
// Each non-zero memory slot becomes one Access with the instruction's IP as
// the PC. Instructions without memory operands contribute nothing (the
// cache simulator consumes only memory references).

// ChampSimRecordSize is the fixed record size in bytes.
const ChampSimRecordSize = 64

// ReadChampSim decodes a raw (uncompressed) ChampSim instruction trace.
// maxAccesses bounds the output per the package-wide convention (see
// CapReached): ≤ 0 means unlimited, and a positive bound is exact — decoding
// stops at exactly maxAccesses accesses even when that lands mid-record, and
// no input past the record that completes the bound is read or validated.
func ReadChampSim(r io.Reader, name string, maxAccesses int) (*Trace, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	capHint := 1 << 16
	if maxAccesses > 0 && maxAccesses < capHint {
		capHint = maxAccesses
	}
	t := New(name, capHint)
	var rec [ChampSimRecordSize]byte
	for !CapReached(t.Len(), maxAccesses) {
		_, err := io.ReadFull(br, rec[:])
		if err == io.EOF {
			break
		}
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("trace: truncated ChampSim record at access %d", t.Len())
		}
		if err != nil {
			return nil, err
		}
		var accs [ChampSimMaxAccesses]Access
		for _, a := range DecodeChampSimRecord(rec, accs[:0]) {
			if CapReached(t.Len(), maxAccesses) {
				break
			}
			t.Append(a)
		}
	}
	return t, nil
}

// ChampSimMaxAccesses is the most accesses one ChampSim record can expand to
// (2 store slots + 4 load slots).
const ChampSimMaxAccesses = 6

// DecodeChampSimRecord expands one 64-byte ChampSim record into its memory
// accesses: up to 2 stores (destination_memory) then up to 4 loads
// (source_memory), in slot order, skipping zero slots. Results are appended
// to dst and the extended slice is returned; passing a slice with capacity
// ChampSimMaxAccesses makes the call allocation-free.
func DecodeChampSimRecord(rec [ChampSimRecordSize]byte, dst []Access) []Access {
	ip := binary.LittleEndian.Uint64(rec[0:8])
	// destination_memory at offset 16: two store addresses.
	for i := 0; i < 2; i++ {
		addr := binary.LittleEndian.Uint64(rec[16+8*i : 24+8*i])
		if addr != 0 {
			dst = append(dst, Access{PC: ip, Addr: addr, Kind: Store})
		}
	}
	// source_memory at offset 32: four load addresses.
	for i := 0; i < 4; i++ {
		addr := binary.LittleEndian.Uint64(rec[32+8*i : 40+8*i])
		if addr != 0 {
			dst = append(dst, Access{PC: ip, Addr: addr, Kind: Load})
		}
	}
	return dst
}

// ReadChampSimGzip decodes a gzip-compressed ChampSim trace (the common
// distribution format; xz-compressed traces must be decompressed
// externally first).
func ReadChampSimGzip(r io.Reader, name string, maxAccesses int) (*Trace, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("trace: opening gzip ChampSim trace: %w", err)
	}
	defer gz.Close()
	return ReadChampSim(gz, name, maxAccesses)
}

// WriteChampSim encodes the trace in ChampSim record format (one record per
// access, memory slot chosen by kind) — primarily for tests and for
// exporting synthetic workloads to ChampSim-based simulators. Writebacks
// are skipped (ChampSim derives them from cache state).
func WriteChampSim(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	var rec [ChampSimRecordSize]byte
	for _, a := range t.Accesses {
		for i := range rec {
			rec[i] = 0
		}
		binary.LittleEndian.PutUint64(rec[0:8], a.PC)
		switch a.Kind {
		case Store:
			binary.LittleEndian.PutUint64(rec[16:24], a.Addr)
		case Load:
			binary.LittleEndian.PutUint64(rec[32:40], a.Addr)
		default:
			continue
		}
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}
