package cpu

import (
	"context"
	"testing"

	"glider/internal/dram"
	"glider/internal/trace"
	"glider/internal/workload"
)

func TestDeterministicMissRates(t *testing.T) {
	t.Parallel()
	spec, err := workload.Lookup("soplex")
	if err != nil {
		t.Fatal(err)
	}
	a, err := SingleCoreMissRate(context.Background(), spec, "glider", 60000, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SingleCoreMissRate(context.Background(), spec, "glider", 60000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed produced different miss rates: %v vs %v", a, b)
	}
}

func TestStoreTrafficGeneratesDRAMWrites(t *testing.T) {
	t.Parallel()
	// A store-heavy streaming trace must produce dirty LLC evictions and
	// hence DRAM writebacks.
	tr := trace.New("stores", 60000)
	for i := 0; i < 60000; i++ {
		tr.Append(trace.Access{PC: 1, Addr: uint64(i) << trace.BlockShift, Kind: trace.Store})
	}
	h, err := BuildHierarchy(1, "lru")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), tr, h, dram.New(dram.SingleCoreConfig()), DefaultCoreConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.DRAM.Writes == 0 {
		t.Fatal("no DRAM writes from a store-only streaming trace")
	}
}

// TestHeadlineResult is the repository's regression guard for the paper's
// central claim: on a context-dependent workload, Glider reduces the LLC
// miss rate below both LRU and Hawkeye.
func TestHeadlineResult(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("headline regression is slow; run without -short")
	}
	spec, err := workload.Lookup("omnetpp")
	if err != nil {
		t.Fatal(err)
	}
	const n = 400_000
	lru, err := SingleCoreMissRate(context.Background(), spec, "lru", n, 42)
	if err != nil {
		t.Fatal(err)
	}
	hawkeye, err := SingleCoreMissRate(context.Background(), spec, "hawkeye", n, 42)
	if err != nil {
		t.Fatal(err)
	}
	glider, err := SingleCoreMissRate(context.Background(), spec, "glider", n, 42)
	if err != nil {
		t.Fatal(err)
	}
	if glider >= lru {
		t.Fatalf("Glider (%.3f) does not beat LRU (%.3f)", glider, lru)
	}
	if glider >= hawkeye {
		t.Fatalf("Glider (%.3f) does not beat Hawkeye (%.3f) on the context workload", glider, hawkeye)
	}
}

func TestMultiCorePerCorePCHR(t *testing.T) {
	t.Parallel()
	// Two cores with interleaved but independent streams: the run must
	// complete and give each core its own IPC; Glider's per-core PCHRs keep
	// the contexts separate (a shared PCHR would interleave PCs from both
	// cores into one history).
	mix := workload.Mixes(1, 2, 11)[0]
	res, err := MultiCore(context.Background(), mix, "glider", 30000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerCoreIPC) != 2 || res.PerCoreIPC[0] <= 0 || res.PerCoreIPC[1] <= 0 {
		t.Fatalf("per-core IPCs %v", res.PerCoreIPC)
	}
}

func TestWritebackKindDoesNotPolluteLLCPredictions(t *testing.T) {
	t.Parallel()
	// Writebacks must not crash or train predictors (policies early-return
	// on writeback); interleave them explicitly.
	tr := trace.New("wb", 2000)
	for i := 0; i < 1000; i++ {
		tr.Append(trace.Access{PC: 1, Addr: uint64(i) << trace.BlockShift, Kind: trace.Load})
		tr.Append(trace.Access{PC: 2, Addr: uint64(i+1<<20) << trace.BlockShift, Kind: trace.Writeback})
	}
	for _, pol := range []string{"hawkeye", "glider", "ship++", "mpppb", "perceptron"} {
		h, err := BuildHierarchy(1, pol)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := RunFunctional(context.Background(), tr, h, 0, true); err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
	}
}
