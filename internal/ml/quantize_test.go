package ml

import (
	"math"
	"testing"
)

func TestQuantizeTensorBounds(t *testing.T) {
	w := []float64{-1, -0.5, 0, 0.25, 1}
	orig := append([]float64(nil), w...)
	maxErr := quantizeTensor(w)
	scale := 1.0 / 127
	if maxErr > scale/2+1e-12 {
		t.Fatalf("max error %v exceeds half a quantization step %v", maxErr, scale/2)
	}
	for i := range w {
		if math.Abs(w[i]-orig[i]) > scale/2+1e-12 {
			t.Fatalf("weight %d moved %v", i, math.Abs(w[i]-orig[i]))
		}
	}
}

func TestQuantizeTensorZeros(t *testing.T) {
	w := []float64{0, 0, 0}
	if quantizeTensor(w) != 0 {
		t.Fatal("all-zero tensor should quantize exactly")
	}
}

func TestQuantizeAttentionLSTMPreservesAccuracy(t *testing.T) {
	// Train a model on a learnable task, quantize, and check predictions
	// survive (int8 quantization should barely perturb a trained model).
	cfg := AttentionLSTMConfig{Vocab: 4, Embed: 8, Hidden: 8, LR: 0.02, ClipNorm: 5, Seed: 1}
	m, err := NewAttentionLSTM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tokens := []int{0, 1, 2, 3, 0, 1, 2, 3, 0, 1}
	labels := []bool{false, true, false, true, false, true, false, true, false, true}
	for i := 0; i < 80; i++ {
		m.TrainSequence(tokens, labels, 4)
	}
	before := m.Predict(tokens, 4)
	rep := QuantizeAttentionLSTM(m)
	after := m.Predict(tokens, 4)

	same := 0
	for i := range before {
		if before[i] == after[i] {
			same++
		}
	}
	if same < len(before)-1 {
		t.Fatalf("quantization flipped %d of %d predictions", len(before)-same, len(before))
	}
	if rep.CompressionRatio() < 7 || rep.CompressionRatio() > 8.5 {
		t.Fatalf("compression ratio %v, want ≈8 (float64 → int8)", rep.CompressionRatio())
	}
	if rep.Params != m.NumWeights() {
		t.Fatalf("quantized %d params, model has %d", rep.Params, m.NumWeights())
	}
}

func TestQuantizeMLP(t *testing.T) {
	m, err := NewMLP(8, 6, 0.02, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		m.TrainSample([]int{1}, true)
		m.TrainSample([]int{2}, false)
	}
	before1, before2 := m.Predict([]int{1}), m.Predict([]int{2})
	rep := QuantizeMLP(m)
	if m.Predict([]int{1}) != before1 || m.Predict([]int{2}) != before2 {
		t.Fatal("quantization flipped confident MLP predictions")
	}
	// Small MLPs carry proportionally more per-tensor scale overhead, so
	// the ratio lands a little under the asymptotic 8×.
	if rep.CompressionRatio() < 6 {
		t.Fatalf("compression ratio %v", rep.CompressionRatio())
	}
}
