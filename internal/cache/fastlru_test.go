package cache_test

import (
	"math/rand"
	"reflect"
	"testing"

	"glider/internal/cache"
	"glider/internal/obs"
	"glider/internal/policy"
	"glider/internal/trace"
)

// lruStream drives one access through both a fast-path cache and a reference
// cache built with the policy package's LRU, asserting bit-identical results
// at every step. This is the cache-level half of the equivalence argument in
// fastlru.go; internal/cpu covers whole hierarchies over every workload.

func randomAccess(r *rand.Rand) (pc, block uint64, core uint8, kind trace.Kind) {
	// A small block universe over many sets forces hits, fills, evictions,
	// and writeback-eviction interleavings.
	pc = uint64(0x400000 + r.Intn(16)*8)
	block = uint64(r.Intn(256))
	core = uint8(r.Intn(2))
	kind = trace.Kind(r.Intn(3)) // Load, Store, Writeback
	return
}

func TestFastLRUEquivalence(t *testing.T) {
	t.Parallel()
	cfg := cache.Config{Name: "L1D", Sets: 8, Ways: 4}
	fast, err := cache.NewUpperLRU(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := cache.MustNew(cfg, policy.NewLRU(cfg.Sets, cfg.Ways))

	r := rand.New(rand.NewSource(1))
	for i := 0; i < 50_000; i++ {
		pc, block, core, kind := randomAccess(r)
		got := fast.Access(pc, block, core, kind)
		want := ref.Access(pc, block, core, kind)
		if got != want {
			t.Fatalf("access %d (pc=%#x block=%d kind=%v): fast=%+v ref=%+v", i, pc, block, kind, got, want)
		}
		if i%1000 == 0 {
			probe := uint64(r.Intn(256))
			if fast.Lookup(probe) != ref.Lookup(probe) {
				t.Fatalf("access %d: Lookup(%d) diverged", i, probe)
			}
			if fast.Occupancy() != ref.Occupancy() {
				t.Fatalf("access %d: occupancy diverged", i)
			}
		}
	}
	if fast.Stats() != ref.Stats() {
		t.Fatalf("stats diverged:\nfast=%+v\nref =%+v", fast.Stats(), ref.Stats())
	}

	// Flush and keep going: recency state across Flush must not change any
	// externally visible outcome either.
	fast.Flush()
	ref.Flush()
	if fast.Occupancy() != 0 || ref.Occupancy() != 0 {
		t.Fatal("flush left valid lines")
	}
	for i := 0; i < 10_000; i++ {
		pc, block, core, kind := randomAccess(r)
		got := fast.Access(pc, block, core, kind)
		want := ref.Access(pc, block, core, kind)
		if got != want {
			t.Fatalf("post-flush access %d: fast=%+v ref=%+v", i, got, want)
		}
	}
	if fast.Stats() != ref.Stats() {
		t.Fatal("post-flush stats diverged")
	}
}

// TestFastLRUObserver: the fast path drives the same observer callbacks at
// the same points as the reference path.
func TestFastLRUObserver(t *testing.T) {
	t.Parallel()
	cfg := cache.Config{Name: "L1D", Sets: 4, Ways: 2}
	fast, err := cache.NewUpperLRU(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := cache.MustNew(cfg, policy.NewLRU(cfg.Sets, cfg.Ways))

	regFast, regRef := obs.NewRegistry(), obs.NewRegistry()
	fast.AttachObserver(cache.NewObserver(regFast, nil, cfg, cache.ObserverOptions{PerPC: true}))
	ref.AttachObserver(cache.NewObserver(regRef, nil, cfg, cache.ObserverOptions{PerPC: true}))

	r := rand.New(rand.NewSource(2))
	for i := 0; i < 20_000; i++ {
		pc, block, core, kind := randomAccess(r)
		if got, want := fast.Access(pc, block, core, kind), ref.Access(pc, block, core, kind); got != want {
			t.Fatalf("access %d diverged: fast=%+v ref=%+v", i, got, want)
		}
	}
	if !reflect.DeepEqual(regFast.Snapshot(), regRef.Snapshot()) {
		t.Fatal("observer snapshots diverged between fast and reference paths")
	}
}

// TestNewUpperLRUValidation mirrors New's geometry checks.
func TestNewUpperLRUValidation(t *testing.T) {
	t.Parallel()
	if _, err := cache.NewUpperLRU(cache.Config{Name: "x", Sets: 3, Ways: 4}); err == nil {
		t.Fatal("non-power-of-two sets accepted")
	}
	if _, err := cache.NewUpperLRU(cache.Config{Name: "x", Sets: 4, Ways: 0}); err == nil {
		t.Fatal("zero ways accepted")
	}
	if c := cache.MustNewUpperLRU(cache.L1DConfig); c.Policy() != nil {
		t.Fatal("fast cache should report a nil policy")
	}
}
