// Quickstart: build a 2 MB last-level cache with the Glider replacement
// policy, feed it a simple access pattern, and watch the predictor learn.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"glider/internal/cache"
	"glider/internal/policy"
	"glider/internal/trace"
)

func main() {
	// A 2 MB, 16-way LLC (Table 1 geometry) with Glider replacement.
	llc := cache.MustNew(cache.LLCConfig, policy.NewGlider(cache.LLCConfig.Sets, cache.LLCConfig.Ways))

	// Workload: PC 0x400100 loops over a small array (cache-friendly),
	// PC 0x400200 streams through memory and never reuses anything
	// (cache-averse). An ideal policy caches the loop and bypasses the
	// stream.
	const loopBlocks = 8192 // 512 KB working set — fits the LLC
	streamBlock := uint64(1 << 20)

	phase := func(iters int) cache.Stats {
		llc.ResetStats()
		for i := 0; i < iters; i++ {
			llc.Access(0x400100, uint64(i%loopBlocks), 0, trace.Load)
			llc.Access(0x400200, streamBlock, 0, trace.Load)
			streamBlock++
		}
		return llc.Stats()
	}

	warm := phase(200_000)
	fmt.Printf("training phase: %6.1f%% LLC miss rate (predictor still learning)\n", warm.MissRate()*100)

	trained := phase(50_000)
	fmt.Printf("trained phase:  %6.1f%% LLC miss rate\n", trained.MissRate()*100)

	// The loop PC now always hits; only the stream misses, and the stream
	// is inserted at distant priority so it cannot evict the loop.
	fmt.Printf("ideal:          %6.1f%% (stream misses only)\n", 50.0)
}
