package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestJSONLSinkRoundTrip(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	s.Emit("cache", "evict", map[string]any{"set": 3, "pc": "0x10"})
	s.Emit("dram", "stall", nil)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("events = %+v", events)
	}
	if events[0].Seq != 1 || events[1].Seq != 2 {
		t.Fatalf("seqs = %d %d", events[0].Seq, events[1].Seq)
	}
	if events[0].Component != "cache" || events[0].Event != "evict" {
		t.Fatalf("event 0 = %+v", events[0])
	}
	if got := events[0].Fields["set"]; got != float64(3) {
		t.Fatalf("set field = %v (%T)", got, got)
	}
	if events[1].Fields != nil {
		t.Fatalf("nil fields must stay nil, got %v", events[1].Fields)
	}
}

func TestJSONLSinkConcurrentEmit(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.Emit("c", "e", map[string]any{"i": i})
			}
		}()
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1600 {
		t.Fatalf("got %d events, want 1600", len(events))
	}
	seen := make(map[uint64]bool)
	for _, e := range events {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
}

func TestRingSinkKeepsTail(t *testing.T) {
	t.Parallel()
	s := NewRingSink(3)
	for i := 0; i < 5; i++ {
		s.Emit("c", "e", map[string]any{"i": i})
	}
	events := s.Events()
	if len(events) != 3 {
		t.Fatalf("ring holds %d, want 3", len(events))
	}
	if events[0].Seq != 3 || events[2].Seq != 5 {
		t.Fatalf("ring seqs = %d..%d, want 3..5", events[0].Seq, events[2].Seq)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReadEventsRejectsMalformed(t *testing.T) {
	t.Parallel()
	_, err := ReadEvents(strings.NewReader("{\"seq\":1}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want line-2 parse error", err)
	}
}

func TestEmitSnapshotAndAggregate(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	r.Counter("cache.llc.hits").Add(7)
	r.Histogram("job.seconds", []float64{1}).Observe(0.5)
	pcs := r.PCStats("cache.llc.pc")
	pcs.Access(0x40, true)
	pcs.Access(0x40, false)
	pcs.Insertion(0x40)

	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	sink.Emit("simrunner", "job", map[string]any{"key": "fig11/mcf/glider", "seconds": 1.5, "ok": true})
	sink.Emit("simrunner", "job", map[string]any{"key": "fig11/mcf/lru", "seconds": 0.5, "ok": false})
	sink.Emit("offline", "epoch", map[string]any{"model": "attention-lstm", "epoch": 0, "loss": 0.7, "accuracy": 0.6, "seconds": 2.0})
	EmitSnapshot(sink, r)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	events, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rep := Aggregate(events)
	if len(rep.Metrics) != 2 {
		t.Fatalf("metrics = %+v", rep.Metrics)
	}
	pcRows := rep.PCTables["cache.llc.pc"]
	if len(pcRows) != 1 || pcRows[0].PC != 0x40 || pcRows[0].Accesses != 2 || pcRows[0].Insertions != 1 {
		t.Fatalf("pc rows = %+v", pcRows)
	}
	if len(rep.Jobs) != 2 {
		t.Fatalf("jobs = %+v", rep.Jobs)
	}
	glider := rep.Jobs[0]
	if glider.Policy != "glider" || glider.Jobs != 1 || glider.Failed != 0 || glider.MeanSec() != 1.5 {
		t.Fatalf("glider group = %+v", glider)
	}
	if lru := rep.Jobs[1]; lru.Policy != "lru" || lru.Failed != 1 {
		t.Fatalf("lru group = %+v", lru)
	}
	if len(rep.Epochs) != 1 || rep.Epochs[0].Model != "attention-lstm" || rep.Epochs[0].Accuracy != 0.6 {
		t.Fatalf("epochs = %+v", rep.Epochs)
	}

	var out bytes.Buffer
	rep.Render(&out, 10)
	text := out.String()
	for _, want := range []string{"cache.llc.hits", "per-PC: cache.llc.pc", "jobs by policy", "training epochs", "0x40"} {
		if !strings.Contains(text, want) {
			t.Fatalf("render missing %q:\n%s", want, text)
		}
	}
}

// TestEmitSnapshotNilSafe: disabled observability must not emit or panic.
func TestEmitSnapshotNilSafe(t *testing.T) {
	t.Parallel()
	EmitSnapshot(nil, NewRegistry())
	EmitSnapshot(NullSink{}, nil)
	var s Sink
	if s != nil {
		t.Fatal("zero Sink must be nil")
	}
}
