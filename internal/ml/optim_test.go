package ml

import (
	"math"
	"testing"
)

// quadratic is a 1-D test objective f(w) = (w-3)², whose gradient is
// 2(w-3). Both optimizers must drive w toward 3.
func quadStep(p *Param) {
	p.G[0] = 2 * (p.W[0] - 3)
}

func TestSGDConverges(t *testing.T) {
	p := NewParam("w", []float64{0})
	opt := NewSGD(0.1, 0)
	for i := 0; i < 200; i++ {
		quadStep(p)
		opt.Step([]*Param{p})
	}
	if math.Abs(p.W[0]-3) > 1e-6 {
		t.Fatalf("SGD: w = %v, want 3", p.W[0])
	}
}

func TestSGDMomentumConverges(t *testing.T) {
	p := NewParam("w", []float64{0})
	opt := NewSGD(0.05, 0.9)
	for i := 0; i < 500; i++ {
		quadStep(p)
		opt.Step([]*Param{p})
	}
	if math.Abs(p.W[0]-3) > 1e-4 {
		t.Fatalf("SGD+momentum: w = %v, want 3", p.W[0])
	}
}

func TestAdamConverges(t *testing.T) {
	p := NewParam("w", []float64{0})
	opt := NewAdam(0.05)
	for i := 0; i < 2000; i++ {
		quadStep(p)
		opt.Step([]*Param{p})
	}
	if math.Abs(p.W[0]-3) > 1e-3 {
		t.Fatalf("Adam: w = %v, want 3", p.W[0])
	}
}

func TestStepClearsGradients(t *testing.T) {
	p := NewParam("w", []float64{1, 2})
	p.G[0], p.G[1] = 5, 7
	NewAdam(0.001).Step([]*Param{p})
	if p.G[0] != 0 || p.G[1] != 0 {
		t.Fatalf("gradients not cleared: %v", p.G)
	}
}

func TestAdamFirstStepMagnitude(t *testing.T) {
	// Adam's bias correction makes the very first step ≈ LR regardless of
	// gradient magnitude.
	for _, g := range []float64{1e-4, 1, 1e4} {
		p := NewParam("w", []float64{0})
		p.G[0] = g
		NewAdam(0.01).Step([]*Param{p})
		if math.Abs(math.Abs(p.W[0])-0.01) > 1e-6 {
			t.Fatalf("first Adam step for grad %v moved %v, want ±0.01", g, p.W[0])
		}
	}
}

func TestEmbeddingForwardBackward(t *testing.T) {
	cfg := AttentionLSTMConfig{Vocab: 3, Embed: 4, Hidden: 2, LR: 0.1, Seed: 1}
	m, err := NewAttentionLSTM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = m
	e := m.emb
	v0 := e.Forward(0).Clone()
	e.Backward(0, Vec{1, 1, 1, 1})
	// Gradient accumulated in the param, weights unchanged until Step.
	if got := e.Forward(0); got[0] != v0[0] {
		t.Fatal("Backward modified weights directly")
	}
	sum := 0.0
	for _, g := range e.Params()[0].G {
		sum += g
	}
	if sum != 4 {
		t.Fatalf("embedding grad sum = %v, want 4", sum)
	}
}
