// Policy comparison: run three representative workload classes from the
// paper's evaluation — a pointer-chasing SPEC-style benchmark (mcf), a
// control-flow-dependent one (omnetpp), and a graph workload (bfs) —
// through the full cache hierarchy under every major replacement policy.
//
//	go run ./examples/policycompare
package main

import (
	"context"
	"fmt"
	"os"

	"glider/internal/cpu"
	"glider/internal/workload"
)

func main() {
	const accesses = 400_000
	policies := []string{"lru", "drrip", "ship++", "mpppb", "hawkeye", "glider"}
	benchmarks := []string{"mcf", "omnetpp", "bfs"}

	fmt.Printf("%-10s", "benchmark")
	for _, p := range policies {
		fmt.Printf(" %9s", p)
	}
	fmt.Println("   (LLC miss rate)")

	for _, name := range benchmarks {
		spec, err := workload.Lookup(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%-10s", name)
		for _, pol := range policies {
			mr, err := cpu.SingleCoreMissRate(context.Background(), spec, pol, accesses, 42)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf(" %8.1f%%", mr*100)
		}
		fmt.Println()
	}

	fmt.Println("\nTiming model (IPC, higher is better):")
	fmt.Printf("%-10s", "benchmark")
	for _, p := range policies {
		fmt.Printf(" %9s", p)
	}
	fmt.Println()
	for _, name := range benchmarks {
		spec, _ := workload.Lookup(name)
		fmt.Printf("%-10s", name)
		for _, pol := range policies {
			res, err := cpu.SingleCore(context.Background(), spec, pol, accesses, 42)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf(" %9.3f", res.IPC)
		}
		fmt.Println()
	}
}
