package policy

import (
	"glider/internal/cache"
	"glider/internal/trace"
)

// DIP — Dynamic Insertion Policy (Qureshi et al., ISCA 2007) — one of the
// heuristic ancestors the paper's related work (§2.1) traces modern
// replacement back to. DIP set-duels between traditional LRU insertion and
// BIP (Bimodal Insertion Policy: insert at LRU position except with 1/32
// probability at MRU), which protects against thrashing.

// LIP is the LRU-Insertion Policy: lines insert at the *LRU* position, so a
// never-reused line is the immediate next victim. It is BIP's ε→0 limit and
// is exposed separately as a useful baseline.
type LIP struct {
	lru *LRU
}

// NewLIP builds a LIP policy.
func NewLIP(sets, ways int) *LIP { return &LIP{lru: NewLRU(sets, ways)} }

// Name implements cache.Policy.
func (p *LIP) Name() string { return "lip" }

// Victim implements cache.Policy (LRU victim selection).
func (p *LIP) Victim(set int, pc, block uint64, core uint8, lines []cache.Line) int {
	return p.lru.Victim(set, pc, block, core, lines)
}

// Update implements cache.Policy: hits promote to MRU, fills insert at LRU.
func (p *LIP) Update(set, way int, pc, block uint64, core uint8, hit bool, kind trace.Kind) {
	if way < 0 {
		return
	}
	p.lru.clock++
	if hit {
		p.lru.stamp[set][way] = p.lru.clock
		return
	}
	// Insert at LRU: stamp below every resident line.
	min := p.lru.clock
	for w, s := range p.lru.stamp[set] {
		if w != way && s < min {
			min = s
		}
	}
	if min == 0 {
		min = 1
	}
	p.lru.stamp[set][way] = min - 1
}

// DIP set-duels LRU against BIP with a PSEL counter.
type DIP struct {
	lru     *LRU
	rng     xorshift64
	psel    int
	pselMax int
}

// NewDIP builds a DIP policy.
func NewDIP(sets, ways int, seed uint64) *DIP {
	return &DIP{lru: NewLRU(sets, ways), rng: newXorshift(seed), psel: 512, pselMax: 1023}
}

// Name implements cache.Policy.
func (p *DIP) Name() string { return "dip" }

// leader returns 0 for LRU leader sets, 1 for BIP leaders, -1 for
// followers (one of each per 64 sets, complementary indices).
func (p *DIP) leader(set int) int {
	switch set % 64 {
	case 0:
		return 0
	case 1:
		return 1
	default:
		return -1
	}
}

// Victim implements cache.Policy.
func (p *DIP) Victim(set int, pc, block uint64, core uint8, lines []cache.Line) int {
	return p.lru.Victim(set, pc, block, core, lines)
}

// Update implements cache.Policy.
func (p *DIP) Update(set, way int, pc, block uint64, core uint8, hit bool, kind trace.Kind) {
	if way < 0 {
		return
	}
	p.lru.clock++
	if hit {
		p.lru.stamp[set][way] = p.lru.clock
		return
	}
	// A miss in a leader set votes against that leader's policy.
	switch p.leader(set) {
	case 0:
		if p.psel < p.pselMax {
			p.psel++
		}
	case 1:
		if p.psel > 0 {
			p.psel--
		}
	}
	useBIP := false
	switch p.leader(set) {
	case 0:
		useBIP = false
	case 1:
		useBIP = true
	default:
		useBIP = p.psel > p.pselMax/2
	}
	if !useBIP || p.rng.intn(32) == 0 {
		// LRU insertion (MRU position).
		p.lru.stamp[set][way] = p.lru.clock
		return
	}
	// BIP common case: insert at LRU position.
	min := p.lru.clock
	for w, s := range p.lru.stamp[set] {
		if w != way && s < min {
			min = s
		}
	}
	if min == 0 {
		min = 1
	}
	p.lru.stamp[set][way] = min - 1
}
