package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVecDot(t *testing.T) {
	v := Vec{1, 2, 3}
	w := Vec{4, 5, 6}
	if got := v.Dot(w); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestVecAddScaleZero(t *testing.T) {
	v := Vec{1, 2}
	v.Add(Vec{3, 4})
	if v[0] != 4 || v[1] != 6 {
		t.Fatalf("Add: got %v", v)
	}
	v.Scale(0.5)
	if v[0] != 2 || v[1] != 3 {
		t.Fatalf("Scale: got %v", v)
	}
	v.Zero()
	if v[0] != 0 || v[1] != 0 {
		t.Fatalf("Zero: got %v", v)
	}
}

func TestMatMulVec(t *testing.T) {
	m := NewMat(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	out := NewVec(2)
	m.MulVec(Vec{1, 1, 1}, out)
	if out[0] != 6 || out[1] != 15 {
		t.Fatalf("MulVec: got %v", out)
	}
}

func TestMatMulVecT(t *testing.T) {
	m := NewMat(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	out := NewVec(3)
	m.MulVecT(Vec{1, 2}, out)
	want := Vec{9, 12, 15}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("MulVecT: got %v, want %v", out, want)
		}
	}
}

func TestMatMulVecShapePanics(t *testing.T) {
	m := NewMat(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("MulVec with wrong shapes did not panic")
		}
	}()
	m.MulVec(NewVec(2), NewVec(2))
}

func TestAddOuter(t *testing.T) {
	m := NewMat(2, 2)
	m.AddOuter(Vec{1, 2}, Vec{3, 4})
	want := []float64{3, 4, 6, 8}
	for i, w := range want {
		if m.Data[i] != w {
			t.Fatalf("AddOuter: got %v, want %v", m.Data, want)
		}
	}
}

func TestSoftmaxProperties(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 || len(raw) > 64 {
			return true
		}
		xs := make(Vec, len(raw))
		for i, v := range raw {
			// Bound inputs so exp stays finite but exercise a wide range.
			xs[i] = math.Mod(v, 100)
			if math.IsNaN(xs[i]) {
				xs[i] = 0
			}
		}
		out := NewVec(len(xs))
		Softmax(xs, out)
		sum := 0.0
		for _, p := range out {
			if p < 0 || p > 1 || math.IsNaN(p) {
				return false
			}
			sum += p
		}
		return almostEqual(sum, 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxStability(t *testing.T) {
	xs := Vec{1000, 1001, 1002}
	out := NewVec(3)
	Softmax(xs, out)
	if math.IsNaN(out[0]) || out[2] <= out[0] {
		t.Fatalf("Softmax unstable: %v", out)
	}
}

func TestClipNorm(t *testing.T) {
	g := []Vec{{3, 0}, {0, 4}}
	norm := ClipNorm(g, 1)
	if !almostEqual(norm, 5, 1e-12) {
		t.Fatalf("pre-clip norm = %v, want 5", norm)
	}
	total := 0.0
	for _, v := range g {
		total += v.Dot(v)
	}
	if !almostEqual(math.Sqrt(total), 1, 1e-9) {
		t.Fatalf("post-clip norm = %v, want 1", math.Sqrt(total))
	}
}

func TestClipNormNoop(t *testing.T) {
	g := []Vec{{0.1, 0.1}}
	ClipNorm(g, 10)
	if g[0][0] != 0.1 {
		t.Fatal("ClipNorm modified gradients under the limit")
	}
}

func TestXavierInitRange(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	m := NewMat(10, 10)
	m.XavierInit(r)
	limit := math.Sqrt(6.0 / 20.0)
	nonzero := false
	for _, v := range m.Data {
		if math.Abs(v) > limit {
			t.Fatalf("Xavier value %v outside ±%v", v, limit)
		}
		if v != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("XavierInit left matrix all zero")
	}
}

func TestSigmoidTanhRange(t *testing.T) {
	for _, x := range []float64{-50, -1, 0, 1, 50} {
		if s := Sigmoid(x); s < 0 || s > 1 {
			t.Fatalf("Sigmoid(%v) = %v out of range", x, s)
		}
		if th := Tanh(x); th < -1 || th > 1 {
			t.Fatalf("Tanh(%v) = %v out of range", x, th)
		}
	}
	if Sigmoid(0) != 0.5 {
		t.Fatalf("Sigmoid(0) = %v, want 0.5", Sigmoid(0))
	}
}
