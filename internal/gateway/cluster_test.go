package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"glider/internal/server"
)

// chaosNode is one in-process gliderd backend wrapped in a deterministic
// fault-injection layer: forced 429s and response stalls flip on and off per
// node, the whole node dies via Kill, and every executor invocation is
// counted per job hash so tests can prove a job ran exactly once across the
// fleet.
type chaosNode struct {
	name string
	srv  *server.Server
	ts   *httptest.Server

	force429 atomic.Bool
	stall    atomic.Pointer[chan struct{}]

	mu    sync.Mutex
	execs map[string]int
}

func (n *chaosNode) bump(hash string) {
	n.mu.Lock()
	n.execs[hash]++
	n.mu.Unlock()
}

func (n *chaosNode) execCount(hash string) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.execs[hash]
}

// Stall makes /v1/ requests hang until the returned release func is called
// (or the request's context dies).
func (n *chaosNode) Stall() (release func()) {
	ch := make(chan struct{})
	n.stall.Store(&ch)
	var once sync.Once
	return func() {
		once.Do(func() {
			n.stall.Store(nil)
			close(ch)
		})
	}
}

// Kill closes the node's listener and in-flight connections: every
// subsequent request fails at the transport level, the shape a crashed
// process produces.
func (n *chaosNode) Kill() {
	n.ts.CloseClientConnections()
	n.ts.Close()
}

// chaosMiddleware injects faults in front of the real server handler. Only
// job endpoints are faulted; /healthz stays reachable so health polling and
// fault injection remain independent axes.
func (n *chaosNode) handler(inner http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v1/") {
			if n.force429.Load() {
				w.Header().Set("Retry-After", "1")
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusTooManyRequests)
				fmt.Fprint(w, `{"error":"injected saturation"}`)
				return
			}
			if p := n.stall.Load(); p != nil {
				select {
				case <-*p:
				case <-r.Context().Done():
					return
				}
			}
		}
		inner.ServeHTTP(w, r)
	})
}

// cluster is N chaos nodes behind one gateway.
type cluster struct {
	nodes []*chaosNode
	gw    *Gateway
	ts    *httptest.Server
}

// cannedCellExec answers instantly with a payload derived only from the
// spec, so any node produces byte-identical results — the fixture for
// routing and chaos tests that don't need real simulations.
func cannedCellExec(ctx context.Context, spec server.JobSpec) (json.RawMessage, error) {
	return json.Marshal(map[string]any{
		"workload": spec.Workload, "policy": spec.Policy,
		"accesses": spec.Accesses, "seed": spec.Seed, "kind": spec.Kind,
	})
}

// newCluster spins n fault-injectable backends and a gateway over them.
// exec nil selects the real experiments entry points. mod tweaks the
// gateway config before construction.
func newCluster(t *testing.T, n int, exec func(context.Context, server.JobSpec) (json.RawMessage, error), mod func(*Config)) *cluster {
	t.Helper()
	c := &cluster{}
	var bases []string
	for i := 0; i < n; i++ {
		nd := &chaosNode{name: fmt.Sprintf("b%d", i), execs: make(map[string]int)}
		wrapped := exec
		srv := server.New(server.Config{
			ShardID: fmt.Sprintf("s%d", i),
			Executor: func(ctx context.Context, spec server.JobSpec) (json.RawMessage, error) {
				nd.bump(spec.Hash())
				if wrapped != nil {
					return wrapped(ctx, spec)
				}
				return nil, fmt.Errorf("no executor")
			},
		})
		nd.srv = srv
		nd.ts = httptest.NewServer(nd.handler(srv.Handler()))
		c.nodes = append(c.nodes, nd)
		bases = append(bases, nd.ts.URL)
	}
	cfg := Config{
		Backends:    bases,
		Retries:     3,
		BackoffBase: time.Millisecond,
		BackoffCap:  5 * time.Millisecond,
		BackoffSeed: 1,
	}
	if mod != nil {
		mod(&cfg)
	}
	c.gw = New(cfg)
	c.ts = httptest.NewServer(c.gw.Handler())
	t.Cleanup(func() {
		c.ts.Close()
		c.gw.Close()
		for _, nd := range c.nodes {
			nd.ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			if err := nd.srv.Drain(ctx); err != nil {
				t.Errorf("drain %s at teardown: %v", nd.name, err)
			}
			cancel()
		}
	})
	return c
}

// ownerIndex returns which node currently owns hash on the gateway's ring.
func (c *cluster) ownerIndex(t *testing.T, hash string) int {
	t.Helper()
	name, ok := c.gw.ring.Owner(hash)
	if !ok {
		t.Fatal("ring is empty")
	}
	for i, nd := range c.nodes {
		if nd.name == name {
			return i
		}
	}
	t.Fatalf("owner %q is not a cluster node", name)
	return -1
}

// totalExecs sums executor invocations for hash across the fleet.
func (c *cluster) totalExecs(hash string) int {
	total := 0
	for _, nd := range c.nodes {
		total += nd.execCount(hash)
	}
	return total
}

func (c *cluster) counter(name string) uint64 {
	for _, cs := range c.gw.Registry().Snapshot().Counters {
		if cs.Name == name {
			return cs.Value
		}
	}
	return 0
}

func simSpec(seed int64) server.JobSpec {
	return server.JobSpec{Kind: server.KindSim, Workload: "omnetpp", Policy: "lru", Accesses: 1000, Seed: seed}
}

func simBody(seed int64) string {
	return fmt.Sprintf(`{"workload":"omnetpp","policy":"lru","accesses":1000,"seed":%d}`, seed)
}

func postJSON(t *testing.T, ts *httptest.Server, path, body string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("POST %s: reading body: %v", path, err)
	}
	return resp.StatusCode, resp.Header, data
}

func getJSON(t *testing.T, ts *httptest.Server, path string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", path, err)
	}
	return resp.StatusCode, resp.Header, data
}

func decodeEnvelope(t *testing.T, data []byte) server.Envelope {
	t.Helper()
	var env server.Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatalf("decoding envelope %q: %v", data, err)
	}
	return env
}
