package cpu

import (
	"context"
	"testing"

	"glider/internal/cache"
	"glider/internal/dram"
	"glider/internal/trace"
	"glider/internal/workload"
)

func TestBuildHierarchy(t *testing.T) {
	h, err := BuildHierarchy(1, "lru")
	if err != nil {
		t.Fatal(err)
	}
	if h.Cores() != 1 || h.LLC().Config().SizeBytes() != 2<<20 {
		t.Fatal("single-core hierarchy misconfigured")
	}
	h4, err := BuildHierarchy(4, "glider")
	if err != nil {
		t.Fatal(err)
	}
	if h4.Cores() != 4 || h4.LLC().Config().SizeBytes() != 8<<20 {
		t.Fatal("4-core hierarchy misconfigured")
	}
	if _, err := BuildHierarchy(1, "bogus"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func hotTrace(n int) *trace.Trace {
	tr := trace.New("hot", n)
	for i := 0; i < n; i++ {
		tr.Append(trace.Access{PC: 1, Addr: uint64(i%4) << trace.BlockShift, Kind: trace.Load})
	}
	return tr
}

func coldTrace(n int) *trace.Trace {
	tr := trace.New("cold", n)
	for i := 0; i < n; i++ {
		tr.Append(trace.Access{PC: 1, Addr: uint64(i) << trace.BlockShift, Kind: trace.Load})
	}
	return tr
}

func TestRunCacheFriendlyFasterThanStreaming(t *testing.T) {
	run := func(tr *trace.Trace) Result {
		h, err := BuildHierarchy(1, "lru")
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(context.Background(), tr, h, dram.New(dram.SingleCoreConfig()), DefaultCoreConfig(), 0)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	hot := run(hotTrace(20000))
	cold := run(coldTrace(20000))
	if hot.IPC <= cold.IPC {
		t.Fatalf("hot IPC %v should exceed cold IPC %v", hot.IPC, cold.IPC)
	}
	if cold.DRAM.Reads == 0 {
		t.Fatal("cold run generated no DRAM traffic")
	}
	if hot.LLC.Accesses == 0 {
		t.Fatal("no LLC accesses recorded")
	}
}

func TestRunWarmupValidation(t *testing.T) {
	h, _ := BuildHierarchy(1, "lru")
	if _, err := Run(context.Background(), hotTrace(10), h, dram.New(dram.SingleCoreConfig()), DefaultCoreConfig(), 11); err == nil {
		t.Fatal("warmup beyond trace length accepted")
	}
	if _, err := RunFunctional(context.Background(), hotTrace(10), h, -1, false); err == nil {
		t.Fatal("negative warmup accepted")
	}
}

func TestRunFunctionalCollectsLLCStream(t *testing.T) {
	h, _ := BuildHierarchy(1, "hawkeye")
	res, err := RunFunctional(context.Background(), coldTrace(5000), h, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.LLCStream == nil || res.LLCStream.Len() == 0 {
		t.Fatal("no LLC stream collected")
	}
	if len(res.Predictions) != res.LLCStream.Len() {
		t.Fatalf("predictions (%d) misaligned with stream (%d)", len(res.Predictions), res.LLCStream.Len())
	}
}

func TestRunFunctionalWarmupExcluded(t *testing.T) {
	h, _ := BuildHierarchy(1, "lru")
	res, err := RunFunctional(context.Background(), coldTrace(1000), h, 500, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.LLC.Accesses >= 1000 {
		t.Fatalf("warmup accesses counted: %d", res.LLC.Accesses)
	}
	if res.LLCStream.Len() > 500 {
		t.Fatalf("warmup accesses collected: %d", res.LLCStream.Len())
	}
}

func TestIPCBounded(t *testing.T) {
	h, _ := BuildHierarchy(1, "lru")
	res, err := Run(context.Background(), hotTrace(10000), h, dram.New(dram.SingleCoreConfig()), DefaultCoreConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 || res.IPC > float64(DefaultCoreConfig().Width) {
		t.Fatalf("IPC %v outside (0, width]", res.IPC)
	}
}

func TestSingleCoreHarness(t *testing.T) {
	spec, err := workload.Lookup("libquantum")
	if err != nil {
		t.Fatal(err)
	}
	res, err := SingleCore(context.Background(), spec, "lru", 20000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 {
		t.Fatal("no IPC")
	}
	mr, err := SingleCoreMissRate(context.Background(), spec, "lru", 20000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mr <= 0 || mr > 1 {
		t.Fatalf("miss rate %v", mr)
	}
}

func TestMultiCoreRun(t *testing.T) {
	mix := workload.Mixes(1, 2, 5)[0]
	res, err := MultiCore(context.Background(), mix, "lru", 10000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerCoreIPC) != 2 {
		t.Fatalf("per-core IPC count %d", len(res.PerCoreIPC))
	}
	for i, ipc := range res.PerCoreIPC {
		if ipc <= 0 {
			t.Fatalf("core %d IPC %v", i, ipc)
		}
	}
}

func TestWeightedSpeedupNearCoreCountWhenIsolated(t *testing.T) {
	// Weighted speedup of an n-core mix is at most n and should be close
	// to n when cores barely interfere (tiny footprints).
	mix := workload.Mix{ID: 0, Members: []workload.Spec{
		mustSpec(t, "libquantum"), mustSpec(t, "lbm"),
	}}
	ws, err := WeightedSpeedup(context.Background(), mix, "lru", 20000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ws <= 0 || ws > 2.2 {
		t.Fatalf("weighted speedup %v outside (0, 2.2]", ws)
	}
}

func mustSpec(t *testing.T, name string) workload.Spec {
	t.Helper()
	s, err := workload.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestMSHRLimitSlowsBursts(t *testing.T) {
	// With 1 MSHR, independent misses serialize; with 16 they overlap.
	tr := coldTrace(5000)
	run := func(mshrs int) float64 {
		h, _ := BuildHierarchy(1, "lru")
		cfg := DefaultCoreConfig()
		cfg.MSHRs = mshrs
		res, err := Run(context.Background(), tr, h, dram.New(dram.SingleCoreConfig()), cfg, 0)
		if err != nil {
			t.Fatal(err)
		}
		return res.IPC
	}
	if narrow, wide := run(1), run(16); narrow >= wide {
		t.Fatalf("1-MSHR IPC %v should be below 16-MSHR IPC %v", narrow, wide)
	}
}

func TestROBLimitsMLP(t *testing.T) {
	tr := coldTrace(5000)
	run := func(rob int) float64 {
		h, _ := BuildHierarchy(1, "lru")
		cfg := DefaultCoreConfig()
		cfg.ROBSize = rob
		res, err := Run(context.Background(), tr, h, dram.New(dram.SingleCoreConfig()), cfg, 0)
		if err != nil {
			t.Fatal(err)
		}
		return res.IPC
	}
	if small, big := run(8), run(256); small >= big {
		t.Fatalf("8-entry ROB IPC %v should be below 256-entry IPC %v", small, big)
	}
}

func TestHierarchyLatencyOrdering(t *testing.T) {
	// An L1-resident loop must run faster than an L2-resident one, which
	// must beat an LLC-resident one.
	mk := func(blocks int) *trace.Trace {
		tr := trace.New("t", 30000)
		for i := 0; i < 30000; i++ {
			tr.Append(trace.Access{PC: 1, Addr: uint64(i%blocks) << trace.BlockShift})
		}
		return tr
	}
	run := func(tr *trace.Trace) float64 {
		h, _ := BuildHierarchy(1, "lru")
		res, err := Run(context.Background(), tr, h, dram.New(dram.SingleCoreConfig()), DefaultCoreConfig(), 0)
		if err != nil {
			t.Fatal(err)
		}
		return res.IPC
	}
	l1 := run(mk(128))    // fits 32 KB L1
	l2 := run(mk(2048))   // fits 256 KB L2, not L1
	llc := run(mk(16384)) // fits 2 MB LLC, not L2
	if !(l1 > l2 && l2 > llc) {
		t.Fatalf("latency ordering violated: L1 %v, L2 %v, LLC %v", l1, l2, llc)
	}
}

var _ = cache.LLCConfig // keep import if unused in future edits

func TestSoloOnSharedUsesSharedGeometry(t *testing.T) {
	spec := mustSpec(t, "libquantum")
	res, err := SoloOnShared(context.Background(), spec, 4, "lru", 20000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 {
		t.Fatal("no IPC from solo-on-shared run")
	}
	// The shared LLC is 4× the private one: a workload that thrashes the
	// private LLC but fits the shared one must do at least as well there.
	private, err := SingleCore(context.Background(), spec, "lru", 20000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.LLC.MissRate() > private.LLC.MissRate()+0.01 {
		t.Fatalf("solo-on-shared miss rate %.3f worse than private %.3f", res.LLC.MissRate(), private.LLC.MissRate())
	}
}
