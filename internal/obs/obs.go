// Package obs is the simulator's observability layer: named counters,
// fixed-bucket histograms, per-index vectors, and per-PC outcome tables
// registered in a Registry, plus an optional per-event Sink (JSONL writer,
// ring buffer) for trace-grounded records of individual decisions.
//
// The package is designed so that instrumentation compiled into hot paths
// costs nearly nothing when observability is disabled:
//
//   - A nil *Registry hands out nil metrics, and every metric method has a
//     nil-receiver fast path, so a disabled component pays one predictable
//     branch per record call.
//   - Sinks are plain interfaces; components guard emission with a nil
//     check and build the event payload only when a sink is attached.
//
// All metric types are safe for concurrent use (atomic counters and
// buckets), so a single Registry may be shared by parallel simulation jobs.
// obs is a leaf package: it imports only the standard library, and every
// simulation layer (cache, policy, opt, dram, simrunner, offline) imports
// it to publish its own metrics bundle.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil Counter silently discards updates so callers can hold
// one unconditionally and pay only a nil check when observability is off.
type Counter struct {
	name string
	v    atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Name returns the registered name ("" for a nil counter).
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Vec is a fixed-length vector of atomic counters indexed by position —
// per-set, per-class, per-verdict tallies. Small vectors may carry labels;
// large ones (per-set) are summarized by sum/nonzero/max.
type Vec struct {
	name   string
	labels []string
	cells  []atomic.Uint64
}

// Inc adds one to cell i; out-of-range indices and nil vectors are ignored.
func (v *Vec) Inc(i int) { v.Add(i, 1) }

// Add adds n to cell i.
func (v *Vec) Add(i int, n uint64) {
	if v == nil || i < 0 || i >= len(v.cells) {
		return
	}
	v.cells[i].Add(n)
}

// Len returns the vector length (0 for nil).
func (v *Vec) Len() int {
	if v == nil {
		return 0
	}
	return len(v.cells)
}

// Value returns cell i's count.
func (v *Vec) Value(i int) uint64 {
	if v == nil || i < 0 || i >= len(v.cells) {
		return 0
	}
	return v.cells[i].Load()
}

// Sum returns the total across all cells.
func (v *Vec) Sum() uint64 {
	if v == nil {
		return 0
	}
	var total uint64
	for i := range v.cells {
		total += v.cells[i].Load()
	}
	return total
}

// Label returns the label for cell i, or its index rendered as a string.
func (v *Vec) Label(i int) string {
	if v != nil && i < len(v.labels) {
		return v.labels[i]
	}
	return fmt.Sprintf("%d", i)
}

// Histogram is a fixed-bucket histogram: observations are counted into the
// first bucket whose upper bound is >= the value, with an implicit +Inf
// overflow bucket, and the exact sum is tracked for mean computation.
type Histogram struct {
	name    string
	bounds  []float64 // ascending upper bounds
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
}

// Observe records one value.
func (h *Histogram) Observe(x float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket counts are small (≤ ~20) and the scan is
	// branch-predictable, beating binary search at these sizes.
	i := 0
	for i < len(h.bounds) && x > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + x)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Mean returns Sum/Count (0 when empty).
func (h *Histogram) Mean() float64 {
	if c := h.Count(); c > 0 {
		return h.Sum() / float64(c)
	}
	return 0
}

// Timer records durations into a histogram in seconds.
type Timer struct {
	h *Histogram
}

// Observe records one duration.
func (t *Timer) Observe(d time.Duration) {
	if t != nil {
		t.h.Observe(d.Seconds())
	}
}

// Histogram exposes the underlying histogram (nil for a nil timer).
func (t *Timer) Histogram() *Histogram {
	if t == nil {
		return nil
	}
	return t.h
}

// PCOutcome aggregates reuse behaviour for the lines one PC touches.
type PCOutcome struct {
	// Accesses, Hits, Misses count this PC's own references.
	Accesses, Hits, Misses uint64
	// Insertions counts lines this PC filled into the cache.
	Insertions uint64
	// EvictedReused / EvictedDead split this PC's evicted insertions by
	// whether the line was touched again between fill and eviction. A high
	// dead fraction marks a cache-averse PC — the signal Glider learns.
	EvictedReused, EvictedDead uint64
}

// DeadFraction returns EvictedDead / (EvictedDead + EvictedReused).
func (o PCOutcome) DeadFraction() float64 {
	t := o.EvictedDead + o.EvictedReused
	if t == 0 {
		return 0
	}
	return float64(o.EvictedDead) / float64(t)
}

// HitRate returns Hits / Accesses.
func (o PCOutcome) HitRate() float64 {
	if o.Accesses == 0 {
		return 0
	}
	return float64(o.Hits) / float64(o.Accesses)
}

// PCStats is a per-PC outcome table. It is mutex-guarded rather than
// atomic: it is only touched when observability is enabled, so the disabled
// path costs a single nil check.
type PCStats struct {
	name string
	mu   sync.Mutex
	m    map[uint64]*PCOutcome
}

// Access records one reference by pc.
func (p *PCStats) Access(pc uint64, hit bool) {
	if p == nil {
		return
	}
	p.mu.Lock()
	o := p.get(pc)
	o.Accesses++
	if hit {
		o.Hits++
	} else {
		o.Misses++
	}
	p.mu.Unlock()
}

// Insertion records that pc filled a line.
func (p *PCStats) Insertion(pc uint64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.get(pc).Insertions++
	p.mu.Unlock()
}

// Eviction records that a line inserted by pc was evicted, and whether it
// was reused between fill and eviction.
func (p *PCStats) Eviction(pc uint64, reused bool) {
	if p == nil {
		return
	}
	p.mu.Lock()
	o := p.get(pc)
	if reused {
		o.EvictedReused++
	} else {
		o.EvictedDead++
	}
	p.mu.Unlock()
}

func (p *PCStats) get(pc uint64) *PCOutcome {
	o, ok := p.m[pc]
	if !ok {
		o = &PCOutcome{}
		p.m[pc] = o
	}
	return o
}

// PCEntry pairs a PC with its outcomes for sorted reporting.
type PCEntry struct {
	PC uint64
	PCOutcome
}

// Top returns the n most-accessed PCs in descending access order (ties
// broken by PC for determinism). n <= 0 returns all.
func (p *PCStats) Top(n int) []PCEntry {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	out := make([]PCEntry, 0, len(p.m))
	for pc, o := range p.m {
		out = append(out, PCEntry{PC: pc, PCOutcome: *o})
	}
	p.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Accesses != out[j].Accesses {
			return out[i].Accesses > out[j].Accesses
		}
		return out[i].PC < out[j].PC
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Entries returns every tracked PC's outcome (Top with no limit).
func (p *PCStats) Entries() []PCEntry { return p.Top(0) }

// Len returns the number of tracked PCs.
func (p *PCStats) Len() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.m)
}

// Registry owns a namespace of metrics. A nil Registry is the disabled
// state: every constructor returns a nil metric whose methods no-op, so
// components attach unconditionally and hot paths stay branch-cheap.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	vecs     map[string]*Vec
	hists    map[string]*Histogram
	pcs      map[string]*PCStats
}

// NewRegistry creates an enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		vecs:     make(map[string]*Vec),
		hists:    make(map[string]*Histogram),
		pcs:      make(map[string]*PCStats),
	}
}

// Counter returns the named counter, creating it on first use. Returns nil
// on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Vec returns the named vector of size cells, creating it on first use.
// Optional labels name the leading cells. A vector re-requested with a
// different size keeps its original size.
func (r *Registry) Vec(name string, size int, labels ...string) *Vec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.vecs[name]
	if !ok {
		if size < 0 {
			size = 0
		}
		v = &Vec{name: name, labels: labels, cells: make([]atomic.Uint64, size)}
		r.vecs[name] = v
	}
	return v
}

// Histogram returns the named histogram with the given ascending bucket
// upper bounds (an overflow bucket is implicit), creating it on first use.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		h = &Histogram{name: name, bounds: b, buckets: make([]atomic.Uint64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

// Timer returns a timer over the named histogram with latency-shaped
// buckets (1 µs … 100 s). Returns nil on a nil registry.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	return &Timer{h: r.Histogram(name, TimeBuckets)}
}

// PCStats returns the named per-PC outcome table, creating it on first use.
func (r *Registry) PCStats(name string) *PCStats {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.pcs[name]
	if !ok {
		p = &PCStats{name: name, m: make(map[uint64]*PCOutcome)}
		r.pcs[name] = p
	}
	return p
}

// Attacher is implemented by components (policies, models) that can publish
// metrics into a registry and per-event records into a sink. Builders probe
// for it with a type assertion after construction, so components opt in
// without widening their constructors.
type Attacher interface {
	AttachObs(reg *Registry, sink Sink)
}

// Flusher is implemented by components that emit end-of-run snapshot events
// (e.g. Glider's ISVM weight dump). Drivers call it once before closing the
// sink.
type Flusher interface {
	FlushObs()
}

// TimeBuckets is the default latency bucket layout in seconds.
var TimeBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1, 5, 10, 60, 100}

// LinearBuckets returns n ascending bounds start, start+width, ….
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExpBuckets returns n ascending bounds start, start·factor, ….
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	x := start
	for i := range out {
		out[i] = x
		x *= factor
	}
	return out
}
