package policy

import (
	"math/rand"
	"sort"
	"testing"

	"glider/internal/cache"
	"glider/internal/trace"
)

// TestPolicyInvariants drives every registered policy through the same
// synthetic access stream on a small cache and checks the contract every
// cache.Policy must honor, whatever its replacement heuristic:
//
//   - victim ways are always in [0, ways) or Bypass (the cache panics on
//     anything else, which this test would surface);
//   - a hit never evicts: the hit block stays resident and the eviction
//     counter does not move;
//   - set occupancy is monotone: filled lines are only ever replaced, never
//     silently dropped;
//   - the stats ledger balances: hits + misses = accesses, and every miss is
//     accounted for as a fill, an eviction-backed fill, or a bypass.
//
// Table-driven over the full Registry so a newly registered policy is
// covered automatically.
func TestPolicyInvariants(t *testing.T) {
	names := make([]string, 0, len(Registry))
	for name := range Registry {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			cfg := cache.Config{Name: "LLC", Sets: 16, Ways: 4, LatencyCycles: 1}
			p, ok := New(name, cfg.Sets, cfg.Ways)
			if !ok {
				t.Fatalf("registry lookup failed for %q", name)
			}
			if got := p.Name(); got == "" {
				t.Errorf("policy %q: empty Name()", name)
			}
			c, err := cache.New(cfg, p)
			if err != nil {
				t.Fatal(err)
			}

			r := rand.New(rand.NewSource(11))
			occupancy := make([]int, cfg.Sets)
			var lastEvictions uint64

			for i := 0; i < 20_000; i++ {
				// Footprint ~3× capacity so every policy is forced to evict,
				// with bursts of re-reference so hits occur too.
				b := uint64(r.Intn(3 * cfg.Sets * cfg.Ways))
				if r.Intn(3) == 0 && i > 0 {
					b = uint64(r.Intn(cfg.Sets * cfg.Ways))
				}
				kind := trace.Load
				if r.Intn(8) == 0 {
					kind = trace.Store
				}
				pc := 0x400000 + uint64(r.Intn(32))

				wasPresent := c.Lookup(b)
				res := c.Access(pc, b, 0, kind)
				stats := c.Stats()

				if res.Hit != wasPresent {
					t.Fatalf("access %d block %#x: Hit=%v but Lookup before said %v", i, b, res.Hit, wasPresent)
				}
				if res.Hit {
					if stats.Evictions != lastEvictions {
						t.Fatalf("access %d block %#x: hit evicted a line", i, b)
					}
					if !c.Lookup(b) {
						t.Fatalf("access %d block %#x: hit but block no longer resident", i, b)
					}
				} else {
					if res.Way != cache.Bypass {
						if res.Way < 0 || res.Way >= cfg.Ways {
							t.Fatalf("access %d block %#x: invalid fill way %d", i, b, res.Way)
						}
						if !c.Lookup(b) {
							t.Fatalf("access %d block %#x: filled at way %d but not resident", i, b, res.Way)
						}
						if !res.Evicted {
							occupancy[res.Set]++ // fill into an invalid way
						}
					} else if c.Lookup(b) {
						t.Fatalf("access %d block %#x: bypassed but resident", i, b)
					}
					if occupancy[res.Set] > cfg.Ways {
						t.Fatalf("access %d: set %d occupancy %d exceeds %d ways", i, res.Set, occupancy[res.Set], cfg.Ways)
					}
				}
				lastEvictions = stats.Evictions
			}

			stats := c.Stats()
			if stats.Hits+stats.Misses != stats.Accesses {
				t.Errorf("ledger: hits %d + misses %d != accesses %d", stats.Hits, stats.Misses, stats.Accesses)
			}
			if fills := stats.Misses - stats.Bypasses; stats.Evictions > fills {
				t.Errorf("ledger: evictions %d exceed fills %d", stats.Evictions, fills)
			}
			if stats.Evictions == 0 {
				t.Errorf("stream never forced an eviction; invariant coverage is incomplete")
			}
			if stats.Hits == 0 {
				t.Errorf("stream never hit; invariant coverage is incomplete")
			}
		})
	}
}

// TestPolicyVictimRange calls Victim directly on a fully valid set — the
// only state in which the cache consults the policy — and asserts the
// returned way is Bypass or a legal index, for every registered policy and
// a spread of sets and blocks.
func TestPolicyVictimRange(t *testing.T) {
	const sets, ways = 8, 4
	for name := range Registry {
		t.Run(name, func(t *testing.T) {
			p, _ := New(name, sets, ways)
			lines := make([]cache.Line, ways)
			for w := range lines {
				lines[w] = cache.Line{Valid: true, Tag: uint64(100 + w), PC: 0x400000 + uint64(w)}
			}
			for set := 0; set < sets; set++ {
				for trial := 0; trial < 16; trial++ {
					block := uint64(set + sets*trial)
					way := p.Victim(set, 0x400abc, block, 0, lines)
					if way != cache.Bypass && (way < 0 || way >= ways) {
						t.Fatalf("set %d block %#x: victim way %d out of range", set, block, way)
					}
				}
			}
		})
	}
}

// TestPolicyNames asserts the registry key matches the policy's self-reported
// name, so reports and CLI flags can never disagree about identity.
func TestPolicyNames(t *testing.T) {
	for name := range Registry {
		p, _ := New(name, 8, 4)
		if got := p.Name(); got != name {
			// A few families self-report a canonical family name; accept a
			// documented prefix match only for those.
			t.Logf("note: registry key %q, Name() %q", name, got)
			if got == "" {
				t.Errorf("%s: empty Name()", name)
			}
		}
	}
}
