package experiments

import (
	"context"
	"strings"
	"testing"

	"glider/internal/estimate"
	"glider/internal/workload"
)

// TestEstimateCellSurrogateAndFallback pins both answers RunEstimateCell can
// give against the process-wide default model: a cell inside the calibrated
// hull comes back from the surrogate with a positive bound, a cell at a
// trace length the model never trained on falls back to exact simulation
// (zero bound — an exact number carries no error), and an unknown workload
// is an error, not a guess.
func TestEstimateCellSurrogateAndFallback(t *testing.T) {
	ctx := context.Background()

	sur, err := RunEstimateCell(ctx, "omnetpp", "lru", 6000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if sur.Source != SourceSurrogate {
		t.Fatalf("in-hull cell source %q (reason %q), want %q", sur.Source, sur.Reason, SourceSurrogate)
	}
	if sur.MissRateBound <= 0 || sur.IPCBound <= 0 {
		t.Fatalf("surrogate answer without bounds: %+v", sur)
	}

	fb, err := RunEstimateCell(ctx, "omnetpp", "lru", 60_000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if fb.Source != SourceExactFallback || fb.Reason == "" {
		t.Fatalf("novel trace length: source %q reason %q, want %q with a reason", fb.Source, fb.Reason, SourceExactFallback)
	}
	if fb.MissRateBound != 0 || fb.IPCBound != 0 {
		t.Fatalf("exact fallback carries bounds: %+v", fb)
	}
	exact, err := RunCell(ctx, "omnetpp", "lru", 60_000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if fb.LLCMissRate != exact.LLCMissRate || fb.IPC != exact.IPC {
		t.Fatalf("fallback (%v, %v) diverges from RunCell (%v, %v)", fb.LLCMissRate, fb.IPC, exact.LLCMissRate, exact.IPC)
	}

	if _, err := RunEstimateCell(ctx, "no-such-workload", "lru", 6000, 7); err == nil {
		t.Fatal("unknown workload did not error")
	}
}

// TestEstimateStudyPlumbing covers the study's cheap parts without paying
// for a full training run: every workload in the training set must resolve
// (a typo here would fail RunEstimate only at full fidelity, minutes in),
// and Render must hold together on a minimal study.
func TestEstimateStudyPlumbing(t *testing.T) {
	wls := EstimateTrainWorkloads()
	if len(wls) < 8 {
		t.Fatalf("training set too small for hull width: %v", wls)
	}
	for _, w := range wls {
		if _, err := workload.Resolve(w); err != nil {
			t.Fatalf("training workload %q does not resolve: %v", w, err)
		}
	}

	var sb strings.Builder
	st := EstimateStudy{
		Train: estimate.Report{Workloads: wls, Cells: 1},
		Sweep: Sweep{
			Workloads:  []string{"omnetpp"},
			Policies:   []string{"lru"},
			Cells:      []SweepCell{{Workload: "omnetpp", Policy: "lru", Source: "exact"}},
			Frontier:   []SweepCell{{Workload: "omnetpp", Policy: "lru", Source: "exact"}},
			ExactCells: 1,
		},
	}
	st.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "Surrogate training") || !strings.Contains(out, "omnetpp") {
		t.Fatalf("render output missing sections:\n%s", out)
	}
}
