package ml

import "math"

// Post-training quantization (§5.4): the paper observes that compression
// techniques — quantization, pruning, integerization — can shrink deep
// models 30–50×, but even compressed they remain impractical for hardware
// prediction. This file implements symmetric per-tensor int8 quantization
// so that claim can be measured: QuantizeAttentionLSTM produces a model
// whose weights round-trip through int8, and QuantizedSizeBytes reports the
// compressed footprint.

// QuantReport summarizes one quantization pass.
type QuantReport struct {
	// Params is the number of quantized weights.
	Params int
	// OriginalBytes is the float64-in-memory footprint (8 bytes/weight;
	// a float32 deployment would be half).
	OriginalBytes int
	// QuantizedBytes is the int8 footprint plus one float32 scale per
	// tensor.
	QuantizedBytes int
	// MaxAbsError is the largest absolute weight perturbation introduced.
	MaxAbsError float64
}

// CompressionRatio is OriginalBytes / QuantizedBytes.
func (r QuantReport) CompressionRatio() float64 {
	if r.QuantizedBytes == 0 {
		return 0
	}
	return float64(r.OriginalBytes) / float64(r.QuantizedBytes)
}

// quantizeTensor rounds a weight slice through symmetric int8 in place and
// returns the maximum absolute error.
func quantizeTensor(w []float64) float64 {
	maxAbs := 0.0
	for _, v := range w {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return 0
	}
	scale := maxAbs / 127
	maxErr := 0.0
	for i, v := range w {
		q := math.Round(v / scale)
		if q > 127 {
			q = 127
		}
		if q < -127 {
			q = -127
		}
		dq := q * scale
		if e := math.Abs(dq - v); e > maxErr {
			maxErr = e
		}
		w[i] = dq
	}
	return maxErr
}

// QuantizeAttentionLSTM quantizes every parameter tensor of the model to
// int8 in place (weights are replaced by their dequantized values, so the
// model keeps working with degraded precision) and reports the size
// arithmetic.
func QuantizeAttentionLSTM(m *AttentionLSTM) QuantReport {
	rep := QuantReport{}
	for _, p := range m.params {
		rep.Params += len(p.W)
		rep.OriginalBytes += 8 * len(p.W)
		rep.QuantizedBytes += len(p.W) + 4 // int8 weights + float32 scale
		if e := quantizeTensor(p.W); e > rep.MaxAbsError {
			rep.MaxAbsError = e
		}
	}
	return rep
}

// QuantizeMLP quantizes an MLP in place (see QuantizeAttentionLSTM).
func QuantizeMLP(m *MLP) QuantReport {
	rep := QuantReport{}
	for _, p := range m.params {
		rep.Params += len(p.W)
		rep.OriginalBytes += 8 * len(p.W)
		rep.QuantizedBytes += len(p.W) + 4
		if e := quantizeTensor(p.W); e > rep.MaxAbsError {
			rep.MaxAbsError = e
		}
	}
	return rep
}
