package policy

import (
	"glider/internal/cache"
	"glider/internal/trace"
)

// EAF — the Evicted-Address Filter (Seshadri et al., PACT 2012) — from the
// paper's heuristic lineage (§2.1): a Bloom filter of recently evicted
// block addresses distinguishes pollution (blocks never re-referenced, not
// in the filter on their next fill) from thrashing/reuse (blocks that come
// back soon after eviction, found in the filter and inserted at high
// priority).

// eafBits sizes the Bloom filter.
const eafBits = 1 << 16

// eafMaxInserts bounds insertions before the filter is cleared (the
// original clears when the filter fills to the cache's capacity).
const eafMaxInserts = 32768

// EAF is the evicted-address-filter policy over an SRRIP backbone.
type EAF struct {
	state   rrpvState
	filter  []uint64 // bitset
	inserts int
	rng     xorshift64
}

// NewEAF builds an EAF policy.
func NewEAF(sets, ways int, seed uint64) *EAF {
	return &EAF{
		state:  newRRPVState(sets, ways),
		filter: make([]uint64, eafBits/64),
		rng:    newXorshift(seed),
	}
}

// Name implements cache.Policy.
func (p *EAF) Name() string { return "eaf" }

func eafHash1(b uint64) uint {
	b ^= b >> 31
	b *= 0x7fb5d329728ea185
	return uint(b % eafBits)
}

func eafHash2(b uint64) uint {
	b ^= b >> 29
	b *= 0x81dadef4bc2dd44d
	return uint(b % eafBits)
}

func (p *EAF) filterAdd(b uint64) {
	h1, h2 := eafHash1(b), eafHash2(b)
	p.filter[h1/64] |= 1 << (h1 % 64)
	p.filter[h2/64] |= 1 << (h2 % 64)
	p.inserts++
	if p.inserts >= eafMaxInserts {
		for i := range p.filter {
			p.filter[i] = 0
		}
		p.inserts = 0
	}
}

func (p *EAF) filterHas(b uint64) bool {
	h1, h2 := eafHash1(b), eafHash2(b)
	return p.filter[h1/64]&(1<<(h1%64)) != 0 && p.filter[h2/64]&(1<<(h2%64)) != 0
}

// Victim implements cache.Policy: SRRIP victim selection, recording the
// evicted address in the filter.
func (p *EAF) Victim(set int, pc, block uint64, core uint8, lines []cache.Line) int {
	w := p.state.victim(set)
	if lines[w].Valid {
		p.filterAdd(lines[w].Tag)
	}
	return w
}

// Update implements cache.Policy.
func (p *EAF) Update(set, way int, pc, block uint64, core uint8, hit bool, kind trace.Kind) {
	if way < 0 {
		return
	}
	if hit {
		p.state.rrpv[set][way] = 0
		return
	}
	// Fill: a recently evicted block that returned is being reused —
	// insert near. Unknown blocks insert bimodally at distant priority
	// (pollution protection).
	if p.filterHas(block) {
		p.state.rrpv[set][way] = 0
	} else if p.rng.intn(16) == 0 {
		p.state.rrpv[set][way] = maxRRPV - 1
	} else {
		p.state.rrpv[set][way] = maxRRPV
	}
}
