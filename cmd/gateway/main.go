// Command gateway fronts a gliderd fleet: consistent-hash job routing
// across N backends, health-aware membership, capped-backoff retries with
// optional hedging, and a gateway-level result cache (see internal/gateway
// and DESIGN.md §12).
//
// Quickstart (3-shard local fleet):
//
//	gliderd -addr :8081 -shard s0 &
//	gliderd -addr :8082 -shard s1 &
//	gliderd -addr :8083 -shard s2 &
//	gateway -addr :8080 -backends http://127.0.0.1:8081,http://127.0.0.1:8082,http://127.0.0.1:8083 &
//	curl -s -X POST localhost:8080/v1/sim \
//	  -d '{"workload":"omnetpp","policy":"glider","accesses":200000,"seed":42}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"glider/internal/gateway"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	backends := flag.String("backends", "", "comma-separated gliderd base URLs (required)")
	replicas := flag.Int("replicas", gateway.DefaultReplicas, "virtual ring points per backend")
	poll := flag.Duration("poll", 500*time.Millisecond, "healthz poll interval")
	retries := flag.Int("retries", 3, "max attempts per job (first try included)")
	backoffBase := flag.Duration("backoff-base", 50*time.Millisecond, "first retry delay")
	backoffCap := flag.Duration("backoff-cap", 2*time.Second, "per-attempt retry delay ceiling")
	hedge := flag.Duration("hedge", 0, "hedge a second shard after this delay (0 = off)")
	cacheEntries := flag.Int("cache", 1024, "gateway result cache entries")
	seed := flag.Int64("seed", 1, "retry jitter seed")
	flag.Parse()

	var bases []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			bases = append(bases, b)
		}
	}
	if len(bases) == 0 {
		fmt.Fprintln(os.Stderr, "gateway: -backends is required (comma-separated gliderd base URLs)")
		os.Exit(2)
	}

	g := gateway.New(gateway.Config{
		Backends:     bases,
		Replicas:     *replicas,
		PollInterval: *poll,
		Retries:      *retries,
		BackoffBase:  *backoffBase,
		BackoffCap:   *backoffCap,
		BackoffSeed:  *seed,
		HedgeDelay:   *hedge,
		CacheEntries: *cacheEntries,
	})
	g.Poll(context.Background()) // establish initial membership before serving

	hs := &http.Server{Addr: *addr, Handler: g.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	log.Printf("gateway: listening on %s over %d backends (retries=%d hedge=%s)", *addr, len(bases), *retries, *hedge)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("gateway: %s received, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			log.Printf("gateway: shutdown: %v", err)
		}
		g.Close()
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "gateway: %v\n", err)
			os.Exit(1)
		}
	}
}
