package ingest

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"glider/internal/trace"
)

// readFixture loads a testdata file.
func readFixture(t *testing.T, name string) []byte {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("fixture %s: %v", name, err)
	}
	return b
}

// goldenAccesses parses mini.golden: one "pc addr kind" line per access,
// produced by the independent fixture generator (not by this package).
func goldenAccesses(t *testing.T) []trace.Access {
	t.Helper()
	var out []trace.Access
	sc := bufio.NewScanner(bytes.NewReader(readFixture(t, "mini.golden")))
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) != 3 {
			t.Fatalf("golden line %q", sc.Text())
		}
		pc, err := strconv.ParseUint(f[0], 0, 64)
		if err != nil {
			t.Fatal(err)
		}
		addr, err := strconv.ParseUint(f[1], 0, 64)
		if err != nil {
			t.Fatal(err)
		}
		kind := trace.Load
		if f[2] == "store" {
			kind = trace.Store
		}
		out = append(out, trace.Access{PC: pc, Addr: addr, Kind: kind})
	}
	return out
}

func sameAccesses(t *testing.T, got, want []trace.Access) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d accesses, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("access %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestScannerGoldenFixture(t *testing.T) {
	want := goldenAccesses(t)
	if len(want) != 15 {
		t.Fatalf("golden fixture has %d accesses, want 15", len(want))
	}
	for name, mk := range map[string]func() (*Scanner, error){
		"raw":      func() (*Scanner, error) { return NewScanner(bytes.NewReader(readFixture(t, "mini.champsim"))), nil },
		"gzip":     func() (*Scanner, error) { return NewScannerGzip(bytes.NewReader(readFixture(t, "mini.champsim.gz"))) },
		"auto-raw": func() (*Scanner, error) { return NewScannerAuto(bytes.NewReader(readFixture(t, "mini.champsim"))) },
		"auto-gz":  func() (*Scanner, error) { return NewScannerAuto(bytes.NewReader(readFixture(t, "mini.champsim.gz"))) },
	} {
		sc, err := mk()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var got []trace.Access
		for sc.Scan() {
			got = append(got, sc.Access())
		}
		if err := sc.Err(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sameAccesses(t, got, want)
		if sc.Emitted() != len(want) {
			t.Fatalf("%s: Emitted() = %d, want %d", name, sc.Emitted(), len(want))
		}
	}
}

// diffOneShot runs the streaming and one-shot decoders over the same bytes
// and requires identical traces and identical errors.
func diffOneShot(t *testing.T, data []byte, gz bool, maxAccesses int) {
	t.Helper()
	var want *trace.Trace
	var wantErr error
	if gz {
		want, wantErr = trace.ReadChampSimGzip(bytes.NewReader(data), "w", maxAccesses)
	} else {
		want, wantErr = trace.ReadChampSim(bytes.NewReader(data), "w", maxAccesses)
	}
	got, gotErr := ReadChampSimStream(bytes.NewReader(data), "w", maxAccesses)

	if (gotErr == nil) != (wantErr == nil) {
		t.Fatalf("max=%d gz=%v: stream err %v, one-shot err %v", maxAccesses, gz, gotErr, wantErr)
	}
	if gotErr != nil {
		if gotErr.Error() != wantErr.Error() {
			t.Fatalf("max=%d gz=%v: stream err %q, one-shot err %q", maxAccesses, gz, gotErr, wantErr)
		}
		return
	}
	if got.Name != want.Name {
		t.Fatalf("name %q vs %q", got.Name, want.Name)
	}
	sameAccesses(t, got.Accesses, want.Accesses)
}

// randomChampSim builds a seeded random record stream exercising every slot
// combination, including records with no memory operands and junk in the
// ignored instruction-info bytes.
func randomChampSim(r *rand.Rand, records int) []byte {
	buf := make([]byte, 0, records*trace.ChampSimRecordSize)
	var rec [trace.ChampSimRecordSize]byte
	for i := 0; i < records; i++ {
		for j := range rec {
			rec[j] = byte(r.Intn(256)) // junk everywhere first
		}
		binary.LittleEndian.PutUint64(rec[0:8], r.Uint64())
		for j := 0; j < 2; j++ {
			a := uint64(0)
			if r.Intn(3) == 0 {
				a = r.Uint64() | 1
			}
			binary.LittleEndian.PutUint64(rec[16+8*j:24+8*j], a)
		}
		for j := 0; j < 4; j++ {
			a := uint64(0)
			if r.Intn(2) == 0 {
				a = r.Uint64() | 1
			}
			binary.LittleEndian.PutUint64(rec[32+8*j:40+8*j], a)
		}
		buf = append(buf, rec[:]...)
	}
	return buf
}

func gzipBytes(t *testing.T, data []byte) []byte {
	t.Helper()
	var b bytes.Buffer
	gw := gzip.NewWriter(&b)
	if _, err := gw.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

func TestStreamVsOneShotDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	caps := []int{-1, 0, 1, 5, 64, 1 << 20}
	for _, records := range []int{0, 1, 2, 7, 100, 5000} {
		data := randomChampSim(r, records)
		for _, cut := range []int{0, 1, 17, 63} { // bytes chopped off the tail
			if cut > len(data) {
				continue
			}
			chopped := data[:len(data)-cut]
			for _, max := range caps {
				diffOneShot(t, chopped, false, max)
				diffOneShot(t, gzipBytes(t, chopped), true, max)
			}
		}
	}
}

func TestStreamVsOneShotGoldenFixtures(t *testing.T) {
	for _, max := range []int{-1, 0, 3, 15, 100} {
		diffOneShot(t, readFixture(t, "mini.champsim"), false, max)
		diffOneShot(t, readFixture(t, "mini.champsim.gz"), true, max)
	}
	// Truncated tail: both decoders report the same truncation error...
	diffOneShot(t, readFixture(t, "truncated.champsim"), false, 0)
	// ...unless the cap stops both before they reach the corrupt tail.
	diffOneShot(t, readFixture(t, "truncated.champsim"), false, 3)
	// Corrupt gzip body: identical error pass-through.
	diffOneShot(t, readFixture(t, "corrupt.champsim.gz"), true, 0)
}

func TestTruncatedErrorMessage(t *testing.T) {
	_, err := ReadChampSimStream(bytes.NewReader(readFixture(t, "truncated.champsim")), "w", 0)
	if err == nil || !strings.Contains(err.Error(), "truncated ChampSim record at access") {
		t.Fatalf("err = %v, want truncation error", err)
	}
}

func TestScannerAutoEmpty(t *testing.T) {
	tr, err := ReadChampSimStream(bytes.NewReader(nil), "empty", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Accesses) != 0 {
		t.Fatalf("got %d accesses from empty source", len(tr.Accesses))
	}
}

func TestScannerAutoRejectsXZ(t *testing.T) {
	_, err := NewScannerAuto(bytes.NewReader([]byte{0xfd, '7', 'z', 'X', 'Z', 0x00}))
	if err == nil || !strings.Contains(err.Error(), "xz") {
		t.Fatalf("err = %v, want xz rejection", err)
	}
}

func TestScannerGzipRejectsRaw(t *testing.T) {
	_, gotErr := NewScannerGzip(bytes.NewReader(readFixture(t, "mini.champsim")))
	_, wantErr := trace.ReadChampSimGzip(bytes.NewReader(readFixture(t, "mini.champsim")), "w", 0)
	if gotErr == nil || wantErr == nil || gotErr.Error() != wantErr.Error() {
		t.Fatalf("stream err %v, one-shot err %v", gotErr, wantErr)
	}
}

// stutterReader returns one byte per Read call, then the wrapped error —
// the worst-case refill pattern.
type stutterReader struct {
	data []byte
	err  error
}

func (r *stutterReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, r.err
	}
	p[0] = r.data[0]
	r.data = r.data[1:]
	return 1, nil
}

// tailErrReader returns all data and a non-EOF error in the SAME Read call.
type tailErrReader struct {
	data []byte
	err  error
	done bool
}

func (r *tailErrReader) Read(p []byte) (int, error) {
	if r.done {
		return 0, r.err
	}
	n := copy(p, r.data)
	r.data = r.data[n:]
	if len(r.data) == 0 {
		r.done = true
		return n, r.err
	}
	return n, nil
}

func TestScannerSourceErrorParity(t *testing.T) {
	data := readFixture(t, "mini.champsim")
	boom := errors.New("disk on fire")

	for name, mk := range map[string]func() io.Reader{
		"stutter":  func() io.Reader { return &stutterReader{data: data, err: boom} },
		"tail-err": func() io.Reader { return &tailErrReader{data: data, err: boom} },
	} {
		want, wantErr := trace.ReadChampSim(mk(), "w", 0)
		got, gotErr := ReadChampSimStream(mk(), "w", 0)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("%s: stream err %v, one-shot err %v", name, gotErr, wantErr)
		}
		if gotErr != nil {
			if gotErr.Error() != wantErr.Error() {
				t.Fatalf("%s: stream err %q, one-shot err %q", name, gotErr, wantErr)
			}
			continue
		}
		sameAccesses(t, got.Accesses, want.Accesses)
	}

	// A mid-stream error must surface only after the buffered records ahead
	// of it are decoded — same as the one-shot reader's bufio behavior.
	src := &tailErrReader{data: data, err: boom}
	sc := NewScanner(src)
	n := 0
	for sc.Scan() {
		n++
	}
	if n != 15 {
		t.Fatalf("decoded %d accesses before error, want all 15", n)
	}
	if sc.Err() != boom {
		t.Fatalf("Err() = %v, want %v", sc.Err(), boom)
	}
}

// syntheticReader procedurally serves `records` ChampSim records without
// ever materializing them: record i has ip = i*8+4096 and a single load at
// block i%(1<<20)+1 (never zero — a zero slot means "no operand"). Memory
// use is O(1) regardless of trace size.
type syntheticReader struct {
	records int
	pos     int64 // byte offset into the virtual stream
	rec     [trace.ChampSimRecordSize]byte
}

func (r *syntheticReader) fill(i int64) {
	for j := range r.rec {
		r.rec[j] = 0
	}
	binary.LittleEndian.PutUint64(r.rec[0:8], uint64(i*8+4096))
	binary.LittleEndian.PutUint64(r.rec[32:40], (uint64(i)%(1<<20)+1)<<trace.BlockShift)
}

func (r *syntheticReader) Read(p []byte) (int, error) {
	total := int64(r.records) * trace.ChampSimRecordSize
	if r.pos >= total {
		return 0, io.EOF
	}
	n := 0
	for n < len(p) && r.pos < total {
		i := r.pos / trace.ChampSimRecordSize
		off := int(r.pos % trace.ChampSimRecordSize)
		r.fill(i)
		c := copy(p[n:], r.rec[off:])
		n += c
		r.pos += int64(c)
	}
	return n, nil
}

// TestScannerBoundedMemory is the tentpole acceptance test: a 256 MiB
// synthetic ChampSim trace streams through the Scanner within a fixed
// allocation budget, and the decode agrees with independently computed
// expected values plus the one-shot reader on a prefix.
func TestScannerBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("256 MiB scan in -short mode")
	}
	const records = 4 << 20 // 4 Mi records × 64 B = 256 MiB of trace
	const traceBytes = records * trace.ChampSimRecordSize
	if traceBytes != 256<<20 {
		t.Fatalf("trace is %d bytes, want 256 MiB", traceBytes)
	}

	sc := NewScanner(&syntheticReader{records: records})

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)

	var count int
	var pcSum, addrSum uint64
	for sc.Scan() {
		a := sc.Access()
		pcSum += a.PC
		addrSum += a.Addr
		count++
	}
	runtime.ReadMemStats(&after)
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	// Allocation budget: the scanner's fixed chunk buffer plus slack for the
	// test harness itself — well under 1% of the trace size. A decoder that
	// materialized the stream would allocate ≥ 96 MiB (4 Mi × 24 B accesses).
	alloc := after.TotalAlloc - before.TotalAlloc
	budget := uint64(4*ScannerBufferBytes + 1<<20)
	if alloc > budget {
		t.Fatalf("scan allocated %d bytes, budget %d (chunk buffer is %d)", alloc, budget, ScannerBufferBytes)
	}

	// Independent expectations straight from the generator formulas.
	if count != records {
		t.Fatalf("decoded %d accesses, want %d", count, records)
	}
	var wantPC, wantAddr uint64
	for i := int64(0); i < records; i++ {
		wantPC += uint64(i*8 + 4096)
		wantAddr += (uint64(i)%(1<<20) + 1) << trace.BlockShift
	}
	if pcSum != wantPC || addrSum != wantAddr {
		t.Fatalf("checksums (pc=%d, addr=%d), want (pc=%d, addr=%d)", pcSum, addrSum, wantPC, wantAddr)
	}

	// Prefix byte-identity against the one-shot reader.
	const prefix = 100_000
	got, err := ReadChampSimStream(&syntheticReader{records: records}, "w", prefix)
	if err != nil {
		t.Fatal(err)
	}
	want, err := trace.ReadChampSim(&syntheticReader{records: records}, "w", prefix)
	if err != nil {
		t.Fatal(err)
	}
	sameAccesses(t, got.Accesses, want.Accesses)
}

func TestCollectRespectsCapConvention(t *testing.T) {
	data := randomChampSim(rand.New(rand.NewSource(1)), 50)
	full, err := ReadChampSimStream(bytes.NewReader(data), "w", 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, max := range []int{-3, 0} { // ≤ 0 means unlimited
		tr, err := ReadChampSimStream(bytes.NewReader(data), "w", max)
		if err != nil {
			t.Fatal(err)
		}
		sameAccesses(t, tr.Accesses, full.Accesses)
	}
	for _, max := range []int{1, 2, 3, 7, len(full.Accesses) - 1} {
		tr, err := ReadChampSimStream(bytes.NewReader(data), "w", max)
		if err != nil {
			t.Fatal(err)
		}
		if len(tr.Accesses) != max {
			t.Fatalf("max=%d: got %d accesses", max, len(tr.Accesses))
		}
		sameAccesses(t, tr.Accesses, full.Accesses[:max])
	}
}

// TestCapStopsReading proves neither decoder validates input past the bound:
// a corrupt tail beyond the cap is silently irrelevant on both paths.
func TestCapStopsReading(t *testing.T) {
	data := randomChampSim(rand.New(rand.NewSource(2)), 10)
	corrupt := append(append([]byte{}, data...), 0xDE, 0xAD) // partial record tail
	for _, max := range []int{1, 5} {
		diffOneShot(t, corrupt, false, max)
		tr, err := ReadChampSimStream(bytes.NewReader(corrupt), "w", max)
		if err != nil {
			t.Fatalf("max=%d: %v", max, err)
		}
		if len(tr.Accesses) != max {
			t.Fatalf("max=%d: got %d accesses", max, len(tr.Accesses))
		}
	}
}

func BenchmarkScanner(b *testing.B) {
	data := randomChampSim(rand.New(rand.NewSource(3)), 1<<16)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := NewScanner(bytes.NewReader(data))
		for sc.Scan() {
		}
		if err := sc.Err(); err != nil {
			b.Fatal(err)
		}
	}
}
