package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func sampleTrace() *Trace {
	t := New("sample", 4)
	t.Append(Access{PC: 0x400000, Addr: 0x1000, Core: 0, Kind: Load})
	t.Append(Access{PC: 0x400004, Addr: 0x1040, Core: 1, Kind: Store})
	t.Append(Access{PC: 0x400008, Addr: 0x2000, Core: 0, Kind: Writeback})
	t.Append(Access{PC: 0x400000, Addr: 0x1000, Core: 0, Kind: Load})
	return t
}

func TestBlockAlignment(t *testing.T) {
	a := Access{Addr: 0x1043}
	if a.Block() != 0x1043>>BlockShift {
		t.Fatalf("Block = %#x", a.Block())
	}
	if BlockSize != 64 {
		t.Fatalf("BlockSize = %d, want 64", BlockSize)
	}
}

func TestKindString(t *testing.T) {
	if Load.String() != "load" || Store.String() != "store" || Writeback.String() != "writeback" {
		t.Fatal("Kind.String mismatch")
	}
	if !strings.Contains(Kind(9).String(), "9") {
		t.Fatal("unknown kind should include its value")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	orig := sampleTrace()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name || !reflect.DeepEqual(got.Accesses, orig.Accesses) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, orig)
	}
}

func TestTextRoundTrip(t *testing.T) {
	orig := sampleTrace()
	var buf bytes.Buffer
	if err := WriteText(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name || !reflect.DeepEqual(got.Accesses, orig.Accesses) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, orig)
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		orig := New("prop", int(n))
		for i := 0; i < int(n); i++ {
			orig.Append(Access{
				PC:   r.Uint64(),
				Addr: r.Uint64(),
				Core: uint8(r.Intn(8)),
				Kind: Kind(r.Intn(3)),
			})
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, orig); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got.Accesses, orig.Accesses)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("not a trace file"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestReadTextRejectsBadLines(t *testing.T) {
	for _, in := range []string{"one two\n", "zz 10 0 0\n", "10 zz 0 0\n", "10 10 999 0\n", "10 10 0 9\n"} {
		if _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Fatalf("bad input %q accepted", in)
		}
	}
}

func TestReadTextSkipsCommentsAndBlank(t *testing.T) {
	in := "# trace foo\n\n# comment\n10 40 0 0\n"
	got, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "foo" || got.Len() != 1 {
		t.Fatalf("got %+v", got)
	}
}

func TestSummarize(t *testing.T) {
	tr := sampleTrace()
	s := tr.Summarize()
	if s.Accesses != 4 || s.PCs != 3 || s.Addrs != 3 {
		t.Fatalf("stats %+v", s)
	}
	if s.AccessesPerPC != 4.0/3.0 || s.AccessesPerAddr != 4.0/3.0 {
		t.Fatalf("ratios %+v", s)
	}
}

func TestPCsSorted(t *testing.T) {
	tr := sampleTrace()
	pcs := tr.PCs()
	if len(pcs) != 3 {
		t.Fatalf("got %d PCs", len(pcs))
	}
	for i := 1; i < len(pcs); i++ {
		if pcs[i-1] >= pcs[i] {
			t.Fatal("PCs not sorted ascending")
		}
	}
}

func TestSliceBounds(t *testing.T) {
	tr := sampleTrace()
	if got := tr.Slice(-5, 100).Len(); got != 4 {
		t.Fatalf("clamped slice len = %d", got)
	}
	if got := tr.Slice(3, 1).Len(); got != 0 {
		t.Fatalf("inverted slice len = %d", got)
	}
	if got := tr.Slice(1, 3).Len(); got != 2 {
		t.Fatalf("slice len = %d", got)
	}
}

func TestInterleaveTagsCores(t *testing.T) {
	a := New("a", 2)
	a.Append(Access{PC: 1, Addr: 0x40})
	a.Append(Access{PC: 2, Addr: 0x80})
	b := New("b", 1)
	b.Append(Access{PC: 3, Addr: 0xc0})
	m := Interleave("mix", a, b)
	if m.Len() != 4 {
		t.Fatalf("interleave len = %d, want 4", m.Len())
	}
	// Round-robin: a[0], b[0], a[1], b[0] (b wraps).
	wantCores := []uint8{0, 1, 0, 1}
	for i, a := range m.Accesses {
		if a.Core != wantCores[i] {
			t.Fatalf("access %d core = %d, want %d", i, a.Core, wantCores[i])
		}
	}
	if m.Accesses[3].PC != 3 {
		t.Fatal("short trace did not wrap")
	}
}

func TestInterleaveEmpty(t *testing.T) {
	if got := Interleave("x").Len(); got != 0 {
		t.Fatalf("empty interleave len = %d", got)
	}
	if got := Interleave("x", New("a", 0)).Len(); got != 0 {
		t.Fatalf("interleave of empty trace len = %d", got)
	}
}

func TestGzipRoundTrip(t *testing.T) {
	orig := sampleTrace()
	var buf bytes.Buffer
	if err := WriteBinaryGzip(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAuto(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name || !reflect.DeepEqual(got.Accesses, orig.Accesses) {
		t.Fatal("gzip round trip mismatch")
	}
}

func TestReadAutoDetectsAllFormats(t *testing.T) {
	orig := sampleTrace()
	var bin, txt, gz bytes.Buffer
	if err := WriteBinary(&bin, orig); err != nil {
		t.Fatal(err)
	}
	if err := WriteText(&txt, orig); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinaryGzip(&gz, orig); err != nil {
		t.Fatal(err)
	}
	for name, buf := range map[string]*bytes.Buffer{"binary": &bin, "text": &txt, "gzip": &gz} {
		got, err := ReadAuto(buf)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(got.Accesses, orig.Accesses) {
			t.Fatalf("%s: mismatch", name)
		}
	}
}

func TestReadAutoEmptyInput(t *testing.T) {
	if _, err := ReadAuto(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestGzipActuallyCompresses(t *testing.T) {
	tr := New("big", 10000)
	for i := 0; i < 10000; i++ {
		tr.Append(Access{PC: 5, Addr: uint64(i) << BlockShift})
	}
	var raw, gz bytes.Buffer
	if err := WriteBinary(&raw, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinaryGzip(&gz, tr); err != nil {
		t.Fatal(err)
	}
	if gz.Len() >= raw.Len()/2 {
		t.Fatalf("gzip %d bytes vs raw %d: insufficient compression", gz.Len(), raw.Len())
	}
}
