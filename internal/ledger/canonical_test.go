package ledger

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"testing"
)

func TestCanonicalizeTable(t *testing.T) {
	t.Parallel()
	cases := []struct {
		in   string
		want string
	}{
		{`{}`, `{}`},
		{`[]`, `[]`},
		{`null`, `null`},
		{`true`, `true`},
		{`false`, `false`},
		{`"a"`, `"a"`},
		{` { "b" : 1 , "a" : 2 } `, `{"a":2,"b":1}`},
		{`{"b":1,"a":2,"b":3}`, `{"a":2,"b":3}`}, // duplicate keys: last wins
		{`[1, 2,3]`, `[1,2,3]`},
		// Integer literals are kept verbatim, including beyond float64
		// precision.
		{`18446744073709551615`, `18446744073709551615`},
		{`-9223372036854775808`, `-9223372036854775808`},
		{`-0`, `-0`},
		// Non-integer literals round-trip through float64 shortest form.
		{`1e3`, `1000`},
		{`1E3`, `1000`},
		{`0.5e1`, `5`},
		{`2.0`, `2`},
		{`0.1`, `0.1`},
		{`-0.0`, `-0`},
		{`1e21`, `1e+21`},
		{`1e-7`, `1e-07`},
		{`0.30000000000000004`, `0.30000000000000004`},
		// Strings: minimal escaping, UTF-8 passthrough, \u unescaping.
		{`"A"`, `"A"`},
		{`"é"`, `"é"`},
		{`"a\/b"`, `"a/b"`},
		{`"tab\tnewline\nquote\"backslash\\"`, `"tab\tnewline\nquote\"backslash\\"`},
		{`"\u0001"`, `"\u0001"`},
		{`"\u001F"`, `"\u001f"`},
		{`"\u0041"`, `"A"`},
		{`{"x":[{"z":1,"y":[true,null]},"s"]}`, `{"x":[{"y":[true,null],"z":1},"s"]}`},
	}
	for _, c := range cases {
		got, err := Canonicalize([]byte(c.in))
		if err != nil {
			t.Fatalf("Canonicalize(%q): %v", c.in, err)
		}
		if string(got) != c.want {
			t.Errorf("Canonicalize(%q) = %q, want %q", c.in, got, c.want)
		}
		// Idempotence on every case.
		again, err := Canonicalize(got)
		if err != nil {
			t.Fatalf("Canonicalize(Canonicalize(%q)): %v", c.in, err)
		}
		if !bytes.Equal(again, got) {
			t.Errorf("Canonicalize not idempotent on %q: %q -> %q", c.in, got, again)
		}
	}
}

func TestCanonicalizeRejects(t *testing.T) {
	t.Parallel()
	for _, in := range []string{
		``, `{`, `[1,`, `"unterminated`, `{"a":}`, `nul`,
		`1 2`, `{} []`, `{}x`,
		`1e999`,   // overflows float64
		`-1.e999`, // ditto, negative
	} {
		if _, err := Canonicalize([]byte(in)); err == nil {
			t.Errorf("Canonicalize(%q): expected error", in)
		}
	}
}

// randJSON builds a random JSON value tree. Numbers come from a mix of
// integers, small decimals, and pathological floats; strings mix ASCII,
// UTF-8, and control characters.
func randJSON(r *rand.Rand, depth int) any {
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			return nil
		case 1:
			return r.Intn(2) == 0
		case 2:
			return randNumber(r)
		default:
			return randString(r)
		}
	}
	switch r.Intn(6) {
	case 0:
		return nil
	case 1:
		return r.Intn(2) == 0
	case 2:
		return randNumber(r)
	case 3:
		return randString(r)
	case 4:
		n := r.Intn(5)
		arr := make([]any, n)
		for i := range arr {
			arr[i] = randJSON(r, depth-1)
		}
		return arr
	default:
		n := r.Intn(5)
		m := make(map[string]any, n)
		for i := 0; i < n; i++ {
			m[randString(r)] = randJSON(r, depth-1)
		}
		return m
	}
}

func randNumber(r *rand.Rand) json.Number {
	switch r.Intn(5) {
	case 0:
		return json.Number(strconv.FormatInt(r.Int63()-r.Int63(), 10))
	case 1:
		return json.Number(strconv.FormatUint(r.Uint64(), 10))
	case 2:
		return json.Number(strconv.FormatFloat(r.NormFloat64(), 'g', -1, 64))
	case 3:
		return json.Number(strconv.FormatFloat(r.Float64()*math.Pow(10, float64(r.Intn(40)-20)), 'g', -1, 64))
	default:
		return json.Number(fmt.Sprintf("%d.%04de%d", r.Intn(100), r.Intn(10000), r.Intn(30)-15))
	}
}

func randString(r *rand.Rand) string {
	n := r.Intn(12)
	b := make([]rune, 0, n)
	for i := 0; i < n; i++ {
		switch r.Intn(5) {
		case 0:
			b = append(b, rune(r.Intn(0x20))) // control characters
		case 1:
			b = append(b, rune(0x80+r.Intn(0x2000))) // multi-byte runes
		default:
			b = append(b, rune(0x20+r.Intn(0x5f)))
		}
	}
	return string(b)
}

// emitShuffled serializes a value like encoding/json would, except object
// keys are emitted in a random order — the adversarial spelling the
// canonicalizer must collapse.
func emitShuffled(r *rand.Rand, buf *bytes.Buffer, v any) {
	switch x := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		r.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
		buf.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				buf.WriteByte(',')
			}
			kb, _ := json.Marshal(k)
			buf.Write(kb)
			buf.WriteString(": ")
			emitShuffled(r, buf, x[k])
		}
		buf.WriteByte('}')
	case []any:
		buf.WriteByte('[')
		for i, e := range x {
			if i > 0 {
				buf.WriteString(" ,")
			}
			emitShuffled(r, buf, e)
		}
		buf.WriteByte(']')
	default:
		b, err := json.Marshal(x)
		if err != nil {
			panic(err)
		}
		buf.Write(b)
	}
}

// TestCanonicalKeyOrderInvariance is the key-order fuzz of the satellite
// checklist: random JSON trees emitted with randomly shuffled key orders
// (and erratic whitespace) must canonicalize to byte-identical forms, and
// encode→decode→encode must be a fixpoint.
func TestCanonicalKeyOrderInvariance(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		v := randJSON(r, 4)
		ref, err := CanonicalJSON(v)
		if err != nil {
			t.Fatalf("case %d: CanonicalJSON: %v", i, err)
		}
		for variant := 0; variant < 3; variant++ {
			var buf bytes.Buffer
			emitShuffled(r, &buf, v)
			got, err := Canonicalize(buf.Bytes())
			if err != nil {
				t.Fatalf("case %d variant %d: Canonicalize(%q): %v", i, variant, buf.Bytes(), err)
			}
			if !bytes.Equal(got, ref) {
				t.Fatalf("case %d variant %d: key order changed canonical form:\n shuffled %q\n got  %q\n want %q", i, variant, buf.Bytes(), got, ref)
			}
		}
		// decode→encode fixpoint over the canonical bytes.
		again, err := Canonicalize(ref)
		if err != nil {
			t.Fatalf("case %d: re-canonicalize: %v", i, err)
		}
		if !bytes.Equal(again, ref) {
			t.Fatalf("case %d: canonical form is not a fixpoint: %q -> %q", i, ref, again)
		}
	}
}

// TestCanonicalStructRoundTrip pins the struct→canonical→struct→canonical
// fixpoint for a result-shaped payload, including uint64 fields past float64
// precision.
func TestCanonicalStructRoundTrip(t *testing.T) {
	t.Parallel()
	type res struct {
		Workload string  `json:"workload"`
		Accesses uint64  `json:"accesses"`
		Miss     float64 `json:"miss"`
		IPC      float64 `json:"ipc"`
	}
	in := res{Workload: "omnetpp", Accesses: 18446744073709551615, Miss: 0.30000000000000004, IPC: 1.0 / 3.0}
	c1, err := CanonicalJSON(in)
	if err != nil {
		t.Fatal(err)
	}
	var back res
	if err := json.Unmarshal(c1, &back); err != nil {
		t.Fatal(err)
	}
	if back != in {
		t.Fatalf("canonical JSON lost information: %+v != %+v", back, in)
	}
	c2, err := CanonicalJSON(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c1, c2) {
		t.Fatalf("encode→decode→encode is not a fixpoint: %q vs %q", c1, c2)
	}
}
